"""The query dispatcher.

Drives a physical plan to completion, restarting with the new plan whenever
a :class:`~repro.executor.runtime.PlanSwitched` signal unwinds out of a cut
operator.  The dispatcher itself is policy-free: all re-optimization
decisions live in the controller (:mod:`repro.core.reoptimizer`); this loop
merely honours the directives, mirroring the paper's split between the
scheduler/dispatcher and the Dynamic Re-Optimization algorithm hooked into
it (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..optimizer.annotate import estimate_snapshot
from ..plans.physical import PlanNode
from ..storage.table import Row
from .batch import execute_node_batches
from .iterators import execute_node
from .runtime import PlanSwitchDirective, PlanSwitched, RuntimeContext

#: Span categories force-closed when a plan switch abandons the generators
#: that would have closed them naturally.
_ABANDONABLE = frozenset({"operator", "pipeline"})


@dataclass
class SwitchEvent:
    """Record of one executed plan switch."""

    directive: PlanSwitchDirective
    materialized_rows: int


@dataclass
class DispatchResult:
    """Everything the dispatcher learned while running a query."""

    rows: list[Row]
    final_plan: PlanNode
    plan_history: list[PlanNode] = field(default_factory=list)
    switch_events: list[SwitchEvent] = field(default_factory=list)


class Dispatcher:
    """Runs plans, following plan switches across restarts."""

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def run(self, plan: PlanNode) -> DispatchResult:
        """Execute ``plan`` (and any successor plans) to completion."""
        history = [plan]
        events: list[SwitchEvent] = []
        current = plan
        tracer = self.ctx.tracer
        while True:
            self._notify_plan(current)
            span = None
            if tracer is not None or self.ctx.estimate_snapshots is not None:
                # Freeze the adopted plan's estimates before improved
                # estimates overwrite node.est in place: the tracer feeds
                # them to EXPLAIN ANALYZE, the feedback repository records
                # them against actuals at query end.  Pure dict writes —
                # never touches the cost clock.
                snapshot = estimate_snapshot(current)
                if self.ctx.estimate_snapshots is not None:
                    self.ctx.estimate_snapshots.update(snapshot)
                if tracer is not None:
                    tracer.record_estimates(snapshot)
            if tracer is not None:
                span = tracer.begin(
                    f"plan-{len(history)}",
                    "plan",
                    root=current.label,
                    est_rows=current.est.rows,
                    est_cost=round(current.est.total_cost, 6),
                )
            try:
                rows = self._drain(current)
                if tracer is not None:
                    tracer.end(span, outcome="completed", rows=len(rows))
                return DispatchResult(
                    rows=rows,
                    final_plan=current,
                    plan_history=history,
                    switch_events=events,
                )
            except PlanSwitched as switched:
                directive = switched.directive
                events.append(
                    SwitchEvent(
                        directive=directive,
                        materialized_rows=switched.materialized_rows,
                    )
                )
                self.ctx.pending_switch = None
                self.ctx.allocation.clear()
                self.ctx.allocation.update(directive.new_allocation)
                current = directive.new_plan
                history.append(current)
                if tracer is not None:
                    # The abandoned plan's generators never reach their
                    # natural span ends; close them here so durations stay
                    # meaningful, then close the plan span itself.
                    tracer.close_open_spans(_ABANDONABLE, abandoned=True)
                    tracer.end(
                        span,
                        outcome="switched",
                        materialized_rows=switched.materialized_rows,
                    )
                    tracer.instant(
                        "plan-switch",
                        "reopt",
                        cut_node_id=directive.cut_node_id,
                        materialized_rows=switched.materialized_rows,
                        remainder_sql=directive.remainder_sql,
                        reason=directive.reason,
                    )

    def _drain(self, plan: PlanNode) -> list[Row]:
        """Run one plan to completion on the configured execution path.

        Plan switches unwind out of either path as
        :class:`~repro.executor.runtime.PlanSwitched`; on the batch path
        they surface at batch boundaries (the cut operator's blocking point),
        so re-optimization semantics are identical.
        """
        if self.ctx.execution_mode in ("batch", "parallel", "columnar"):
            rows: list[Row] = []
            for batch in execute_node_batches(plan, self.ctx):
                rows.extend(batch)
            return rows
        return list(execute_node(plan, self.ctx))

    def _notify_plan(self, plan: PlanNode) -> None:
        controller = self.ctx.controller
        if controller is not None and hasattr(controller, "set_current_plan"):
            controller.set_current_plan(plan)
