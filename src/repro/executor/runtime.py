"""Execution runtime state.

A :class:`RuntimeContext` carries everything operators need while running:
the catalog and buffer pool, the cost clock, the (mutable!) memory
allocation map, per-node progress bookkeeping, and the hook through which
the Dynamic Re-Optimization controller intervenes.

Plan modification is coordinated through :class:`PlanSwitchDirective` /
:class:`PlanSwitched`: when the controller decides to re-optimize, it
registers a directive for the *cut node* (the blocking operator whose build
input just finished).  That operator then runs to completion, redirects its
output into the directive's temporary table, and raises
:class:`PlanSwitched`, unwinding to the dispatcher which resumes with the
new plan — the paper's Figure 6 mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from ..config import EngineConfig
from ..errors import ExecutionError
from ..optimizer.cost_model import CostModel, OperatorCost
from ..plans.physical import PlanNode, StatsCollectorNode
from ..storage.buffer import BufferPool
from ..storage.catalog import Catalog
from ..storage.disk import CostClock
from ..storage.table import Table
from ..storage.temp import TempTableManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..observe.trace import QueryTracer
    from .collector import ObservedStatistics


@dataclass
class PlanSwitchDirective:
    """Instructions for switching plans at a cut node.

    Prepared by the re-optimization controller *before* materialisation: the
    temp table is registered (empty, with estimated statistics) and the new
    plan for the remainder is already optimized.
    """

    cut_node_id: int
    temp_table: Table
    new_plan: PlanNode
    new_allocation: dict[int, int]
    remainder_sql: str
    reason: str = ""


class PlanSwitched(Exception):  # noqa: N818 - control-flow signal, not an error
    """Raised by a cut operator after materialising its output."""

    def __init__(self, directive: PlanSwitchDirective, materialized_rows: int) -> None:
        super().__init__(f"plan switched at node {directive.cut_node_id}")
        self.directive = directive
        self.materialized_rows = materialized_rows


class ExecutionController(Protocol):
    """Hook invoked when a statistics collector finishes (paper section 3.1)."""

    def on_collector_complete(
        self, node: StatsCollectorNode, observed: "ObservedStatistics"
    ) -> None:
        """React to fresh run-time statistics (re-allocate and/or re-plan)."""


@dataclass
class ParallelExecStats:
    """Morsel-execution telemetry accumulated over one query run.

    Purely observational (wall-clock, worker identities): nothing here may
    feed back into simulated costs or statistics, which stay bit-identical
    to the serial batch path by construction.
    """

    #: Largest effective pool size used by any parallel pipeline (0 until
    #: the first pipeline runs; 1 when every pipeline fell back to serial).
    workers: int = 0
    #: Total morsels executed across all parallel pipelines.
    morsels: int = 0
    #: Number of pipelines (leaf, probe-side or pre-aggregating) that took
    #: the morsel-parallel path.
    pipelines: int = 0
    #: Of those, probe-side hash-join pipelines.
    join_pipelines: int = 0
    #: Of those, pipelines that pre-aggregated in the workers.
    preagg_pipelines: int = 0
    #: Of those, hash-join build-side pipelines (per-worker partition
    #: hash tables merged in morsel order).
    build_pipelines: int = 0
    #: Of those, sort pipelines (per-worker sorted runs, loser-tree merge).
    sort_pipelines: int = 0
    #: Sorted runs consumed by loser-tree merges (one run per morsel that
    #: produced pipeline output).
    sort_runs_merged: int = 0
    #: Rows that travelled through per-partition spill files because the
    #: worker's staging window was exhausted (``parallel_spill``).
    rows_spilled: int = 0
    #: Morsel results spilled to per-partition files.
    morsels_spilled: int = 0
    #: Distinct partitions that spilled at least one result.
    partitions_spilled: int = 0
    #: Rows shipped from workers to the merge point (pre-aggregated
    #: pipelines ship group partials instead, so their input rows are
    #: counted in :attr:`rows_preaggregated`, not here).
    rows_shipped: int = 0
    #: Pipeline-output rows folded into worker-side aggregate partials
    #: instead of being shipped.
    rows_preaggregated: int = 0
    #: Group partials shipped by pre-aggregating morsels (one per group
    #: per morsel; compare with :attr:`rows_preaggregated` for the
    #: shipping reduction).
    groups_shipped: int = 0
    #: Morsel results that were already staged (unpickled by a read-ahead
    #: thread) when the merge loop asked for them.
    prefetched_morsels: int = 0
    #: Busy wall-clock seconds per worker process id, per pipeline
    #: (pipelines are numbered 1..n in execution order; the parent's pid
    #: appears for in-process fallback morsels).
    pipeline_worker_seconds: dict[int, dict[int, float]] = field(
        default_factory=dict
    )
    #: Set once a requested multi-worker pool degraded to serial execution
    #: (platform without ``fork``), so the warning fires once per run.
    fallback_warned: bool = False

    @property
    def worker_seconds(self) -> dict[int, float]:
        """Busy seconds per worker pid, aggregated across pipelines."""
        totals: dict[int, float] = {}
        for per_worker in self.pipeline_worker_seconds.values():
            for pid, seconds in per_worker.items():
                totals[pid] = totals.get(pid, 0.0) + seconds
        return totals


@dataclass
class ColumnarExecStats:
    """Columnar-execution telemetry accumulated over one query run.

    Counts what the columnar path did — pipelines taken, page groups read
    versus skipped via zone maps.  Under the default
    ``zone_map_cost_mode="charge"`` these are purely observational (skipped
    groups' simulated charges are replayed, so costs stay bit-identical to
    the serial batch path); under ``"free"`` the skip counts explain
    exactly where the simulated cost diverges.
    """

    #: Leaf pipelines that ran in column space (keyed ones included).
    pipelines: int = 0
    #: Of those, keyed pipelines feeding a hash join probe or aggregate.
    keyed_pipelines: int = 0
    #: Of those, pipelines whose column kernels ran inside forked morsel
    #: workers (``columnar_parallel``).
    parallel_pipelines: int = 0
    #: Page groups whose arrays were evaluated.
    groups_read: int = 0
    #: Page groups skipped whole via zone maps.
    groups_skipped: int = 0
    #: Pages belonging to skipped groups.
    pages_skipped: int = 0
    #: Rows belonging to skipped groups (never materialised or filtered).
    rows_skipped: int = 0
    #: Per-scan breakdown keyed by scan node id:
    #: ``{"table", "groups_read", "groups_skipped", "pages_skipped"}``.
    by_scan: dict[int, dict] = field(default_factory=dict)


@dataclass
class VectorExecStats:
    """Vectorized-kernel telemetry accumulated over one query run.

    Counts where the NumPy group-by fold and join-probe kernels ran in
    place of the per-row Python loops.  Purely observational: the kernels
    are bit-identical to the serial folds, so these numbers explain
    wall-clock wins and never simulated-cost differences.
    """

    #: Hash aggregates folded entirely by the vectorized kernels (the
    #: columnar whole-stream fold or a run-shipping morsel pre-aggregation).
    agg_pipelines: int = 0
    #: Hash-join probe sides answered via the sorted build-key index.
    probe_pipelines: int = 0
    #: Input rows folded by vectorized aggregation kernels.
    rows_folded: int = 0
    #: Per-node breakdown keyed by plan-node id (aggregate nodes:
    #: ``{"kind": "aggregate", "rows_folded", "groups"}``; join nodes:
    #: ``{"kind": "probe", "rows_probed", "matches"}``).
    by_node: dict[int, dict] = field(default_factory=dict)


@dataclass
class RuntimeContext:
    """Mutable state shared by all operators of one query execution."""

    catalog: Catalog
    config: EngineConfig
    clock: CostClock
    buffer_pool: BufferPool
    temp_manager: TempTableManager
    cost_model: CostModel
    allocation: dict[int, int] = field(default_factory=dict)
    controller: ExecutionController | None = None
    started: set[int] = field(default_factory=set)
    #: Memory-consuming operators that received their first input row: their
    #: grant is committed and dynamic re-allocation must not change it
    #: (paper section 2.3: "once an operator starts executing, its memory
    #: allocation cannot be changed").
    memory_committed: set[int] = field(default_factory=set)
    completed: set[int] = field(default_factory=set)
    actual_rows: dict[int, int] = field(default_factory=dict)
    observed: dict[int, "ObservedStatistics"] = field(default_factory=dict)
    pending_switch: PlanSwitchDirective | None = None
    #: Count of plan switches performed so far (for profiles/tests).
    switches: int = 0
    #: Count of memory re-allocations performed so far.
    reallocations: int = 0
    #: Morsel-parallel telemetry (populated by :mod:`repro.executor.parallel`).
    parallel: ParallelExecStats = field(default_factory=ParallelExecStats)
    #: Columnar telemetry (populated by :mod:`repro.executor.columnar`).
    columnar: ColumnarExecStats = field(default_factory=ColumnarExecStats)
    #: Vectorized-kernel telemetry (populated by the agg/probe kernels).
    vector: VectorExecStats = field(default_factory=VectorExecStats)
    #: The query's total workspace budget in pages; the parallel executor
    #: bounds its in-flight morsel staging by what the allocation left free.
    memory_budget_pages: int = 0
    #: Optional span tracer (:mod:`repro.observe.trace`).  Strictly
    #: observational — it reads ``clock.now`` but never charges, so every
    #: simulated quantity is identical whether or not it is attached.  All
    #: hooks guard on ``None`` so disabled tracing costs one attribute
    #: check per operator, never per row.  On the parallel path all span
    #: recording happens in the merging parent (workers run raw stage
    #: functions, not the mark hooks), so worker scheduling cannot reorder
    #: the trace.
    tracer: "QueryTracer | None" = None
    #: Per-node estimate snapshots taken at plan adoption, keyed by node id
    #: (populated by the dispatcher when the feedback repository is enabled;
    #: ``None`` when it is disabled).  Pure dict writes — never touches the
    #: cost clock.
    estimate_snapshots: dict[int, dict[str, float]] | None = None

    @property
    def execution_mode(self) -> str:
        """``"row"``, ``"batch"``, ``"parallel"`` or ``"columnar"`` execution."""
        return self.config.execution_mode

    @property
    def batch_size(self) -> int:
        """Target rows per batch on the batch execution path."""
        return self.config.batch_size

    def memory_for(self, node: PlanNode) -> int:
        """Granted memory pages for a node (max demand when ungoverned)."""
        granted = self.allocation.get(node.node_id)
        if granted is not None:
            return granted
        return max(node.est.max_memory_pages, 1)

    def charge(self, cost: OperatorCost) -> None:
        """Charge an operator cost to the clock, category by category."""
        if cost.seq_read_pages:
            self.clock.charge_seq_read(cost.seq_read_pages)
        if cost.rand_read_pages:
            self.clock.charge_rand_read(cost.rand_read_pages)
        if cost.write_pages:
            self.clock.charge_write(cost.write_pages)
        if cost.cpu_units:
            self.clock.charge_cpu(cost.cpu_units)
        if cost.stats_cpu_units:
            self.clock.charge_stats_cpu(cost.stats_cpu_units)

    def mark_started(self, node: PlanNode) -> None:
        """Record that a node's iterator was first pulled."""
        self.started.add(node.node_id)
        if self.tracer is not None:
            self.tracer.node_started(node)

    def commit_memory(self, node: PlanNode) -> int:
        """Pin a memory-consuming operator's grant at first-input time.

        Returns the granted pages.  Until this point, dynamic re-allocation
        may still change the operator's grant (the operator holds no data
        yet); afterwards the grant is fixed.
        """
        self.memory_committed.add(node.node_id)
        return self.memory_for(node)

    def mark_completed(self, node: PlanNode, rows: int) -> None:
        """Record that a node drained, with its actual output cardinality."""
        self.completed.add(node.node_id)
        self.actual_rows[node.node_id] = rows
        if self.tracer is not None:
            self.tracer.node_completed(node, rows)

    def take_switch_for(self, node_id: int) -> PlanSwitchDirective | None:
        """Claim a pending plan switch if it targets this node."""
        directive = self.pending_switch
        if directive is not None and directive.cut_node_id == node_id:
            self.pending_switch = None
            return directive
        return None

    def request_switch(self, directive: PlanSwitchDirective) -> None:
        """Register a plan switch to be executed by the cut node."""
        if self.pending_switch is not None:
            raise ExecutionError("a plan switch is already pending")
        self.pending_switch = directive
