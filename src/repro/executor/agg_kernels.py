"""Vectorized group-by folding and join-probe kernels (NumPy).

The columnar path (PR 6) vectorized scans, filters and key extraction, but
aggregation and join probing still ran the row-at-a-time Python fold.
This module supplies the missing kernels under the engine's unconditional
bit-parity contract: every result byte — including float64 SUM/AVG totals
— must match the serial ``_AggState`` accumulator exactly.

Float SUM parity argument
-------------------------
The serial fold is a strict left-to-right accumulation::

    total = 0
    for value in run:          # run = the group's values in row order
        total += value

Floating-point addition is not associative, so a vectorized SUM is only
bit-identical if it performs *the same additions in the same order*.
``np.add.reduceat`` does **not** guarantee that: NumPy reduces contiguous
float64 segments with pairwise/SIMD blocking, so reduceat totals diverge
from the serial fold in the low bits.  What *is* a strict sequential fold
(verified by :func:`_probe_axis0_left_fold` at import time) is the axis-0
reduction of a C-contiguous 2-D float64 matrix with at least two columns:
``np.add.reduce(m, axis=0)`` walks rows top to bottom, adding row ``i`` to
the running accumulator row — the inner (column) dimension is what gets
vectorized, the group dimension, so the per-column fold order is exactly
the serial order.  (A single-column matrix falls back to NumPy's pairwise
1-D path, so kernels always pad the group dimension to >= 2.)

:func:`float_group_sums` therefore gathers each group's values in row
order into its own matrix column, front-padded with ``+0.0`` so every
column folds ``0.0 + v0 + v1 + ...`` — bit-identical to the serial fold's
``0 + v0 + ...`` start (``0 + (-0.0)`` is ``+0.0`` under both Python and
IEEE 754 addition, so the zero padding is exact, never a no-op
approximation).  Groups are bucketed into power-of-two length classes so
the padding overhead is bounded by 2x even under heavy group skew.

If a future NumPy changes the axis-0 fold (e.g. blocks over rows), the
import-time probe fails closed: :func:`kernels_available` returns False
and every caller falls back to the serial fold, keeping parity at the
cost of speed.

MIN/MAX and integers
--------------------
``np.minimum/np.maximum.reduceat`` are order-insensitive *except* for
signed-zero ties (NumPy keeps the second operand, the serial strict
comparison keeps the first) and NaNs (SIMD min/max may drop them, the
serial keep-first fold propagates position-dependently).  Groups
containing ``±0.0`` or NaN are detected vectorially and recomputed with
an exact serial-replica loop; everything else takes the reduceat result,
which is bitwise unique when no such tie exists.  Integer SUM is fully
associative, so ``np.add.reduceat`` is exact — guarded by an overflow
bound (NumPy int64 wraps silently, Python ints do not) with an
object-dtype reduceat fallback that folds arbitrary-precision Python
ints.  COUNT is ``np.bincount`` (counting NULLs, like the serial
``update``'s unconditional ``count += 1``).

Join probe
----------
:class:`ProbeIndex` sorts the build side's (key, row) pairs once with a
stable argsort — equal keys keep hash-table insertion order, which is
build-input row order — then answers each probe batch with two
``np.searchsorted`` sweeps and a ``np.repeat`` expansion.  Output rows
are emitted in probe-row order with build matches in build order: exactly
the serial ``hash_table.get`` loop's order.  Keys must live in an exact
total order shared with Python ``==`` — int64 values or dictionary codes
— so any build key that is not a plain ``int`` (a float or bool can equal
an int under Python semantics but not under int64 comparison) disables
the kernel for that join.
"""

from __future__ import annotations

from typing import Sequence

try:  # Optional dependency: without NumPy every kernel reports unavailable.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]


def _probe_axis0_left_fold() -> bool:
    """Whether ``np.add.reduce(matrix, axis=0)`` is a strict top-to-bottom
    sequential fold for float64 — the property the float SUM kernels need.

    Probes adversarial operand sets whose sums differ between sequential
    and pairwise/compensated orders, at several matrix widths, plus the
    signed-zero prefix identity (``0.0 + -0.0`` must normalise to
    ``+0.0``).  Any mismatch fails closed to the serial fold.
    """
    if _np is None:
        return False
    cases = [
        [1e16, 1.0, 1.0, -1e16],
        [1.0, 1e100, 1.0, -1e100, 1.0],
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        [1e308, 1e308, -1e308, -1e308, 1.0],
    ]
    for values in cases:
        total = 0.0
        for value in values:
            total = total + value
        for width in (2, 3, 7):
            matrix = _np.zeros((len(values) + 1, width), dtype=_np.float64)
            matrix[1:, 0] = values
            with _np.errstate(over="ignore", invalid="ignore"):
                folded = _np.add.reduce(matrix, axis=0)[0]
            if folded != total and not (
                _np.isnan(folded) and total != total
            ):
                return False
    matrix = _np.zeros((2, 2), dtype=_np.float64)
    matrix[1, 0] = -0.0
    zero = _np.add.reduce(matrix, axis=0)[0]
    return zero == 0.0 and not _np.signbit(zero)


_KERNELS_OK = _probe_axis0_left_fold()


def kernels_available() -> bool:
    """Whether the vectorized fold kernels may run (NumPy present and the
    axis-0 sequential-fold property verified)."""
    return _KERNELS_OK


# ----------------------------------------------------------------------
# Group-key factorization (first-occurrence order)
# ----------------------------------------------------------------------


def factorize_array(array):
    """Factorize a numeric array into first-occurrence-ordered group codes.

    Returns ``(codes, keys, firsts)``: ``codes[i]`` is the group of row
    ``i``, ``keys`` the distinct values with ``keys[g]`` the value first
    seen among rows of group ``g``, and ``firsts[g]`` that first row's
    index.  Exact for integer dtypes (int64 values, dictionary codes);
    float arrays must go through :func:`factorize_values`, whose Python
    dict replicates the serial path's NaN/signed-zero key semantics.
    """
    uniq, first, inverse = _np.unique(
        array, return_index=True, return_inverse=True
    )
    order = _np.argsort(first, kind="stable")
    rank = _np.empty(len(order), dtype=_np.int64)
    rank[order] = _np.arange(len(order), dtype=_np.int64)
    return rank[inverse], uniq[order], first[order]


def factorize_values(values: Sequence):
    """Factorize a Python value sequence with serial-dict key semantics.

    The mapping dict buckets exactly like the serial fold's ``groups``
    dict (hash then identity-or-equality), so ``0.0``/``-0.0`` share a
    group keyed by the first occurrence and each distinct NaN object forms
    its own group — byte-identical grouping for every input the serial
    path accepts.  Returns ``(codes, keys)``.
    """
    codes = _np.empty(len(values), dtype=_np.int64)
    mapping: dict = {}
    keys: list = []
    get = mapping.get
    for i, value in enumerate(values):
        code = get(value, -1)
        if code < 0:
            code = len(keys)
            mapping[value] = code
            keys.append(value)
        codes[i] = code
    return codes, keys


# ----------------------------------------------------------------------
# Grouped folds
# ----------------------------------------------------------------------


def group_layout(codes, n_groups: int):
    """Stable-gather layout: ``(counts, order, starts)`` where ``order``
    sorts rows by group with original row order preserved inside each
    group and ``starts[g]`` is group ``g``'s first slot in that order."""
    counts = _np.bincount(codes, minlength=n_groups)
    order = _np.argsort(codes, kind="stable")
    starts = _np.zeros(n_groups, dtype=_np.int64)
    if n_groups > 1:
        _np.cumsum(counts[:-1], out=starts[1:])
    return counts, order, starts


def group_counts(codes, n_groups: int) -> list:
    """Per-group row counts (COUNT semantics: NULL rows count)."""
    return _np.bincount(codes, minlength=n_groups).tolist()


def float_group_sums(values, codes, n_groups: int, layout=None) -> list:
    """Exact serial-order SUM per group for a float64 array (no NULLs).

    Each group's values are gathered in row order into one column of a
    front-zero-padded matrix and folded with ``np.add.reduce(axis=0)`` —
    a verified strict sequential fold (see module docstring).  Groups are
    bucketed by power-of-two length class to bound padding waste; every
    matrix keeps >= 2 columns and one all-zero top row so each column
    folds ``0.0 + v0 + ...`` like the serial accumulator.  Every group
    must own at least one row.  ``layout`` optionally supplies a
    precomputed ``group_layout(codes, n_groups)`` so callers folding
    several columns over the same codes pay for the argsort once.
    Returns Python floats.
    """
    counts, order, starts = (
        layout if layout is not None else group_layout(codes, n_groups)
    )
    sorted_values = values[order]
    sorted_codes = codes[order]
    # Position of each slot within its group, then the group's pow-2
    # length class (counts < 2**52 are exact in float64, so frexp's
    # exponent is bit_length(count - 1), i.e. ceil-log2).
    pos = _np.arange(len(values), dtype=_np.int64) - starts[sorted_codes]
    bits = _np.frexp((counts - 1).astype(_np.float64))[1]
    length_class = _np.where(counts <= 1, 1, _np.int64(1) << bits)
    totals = _np.zeros(n_groups, dtype=_np.float64)
    element_class = length_class[sorted_codes]
    for cls in _np.unique(length_class).tolist():
        members = _np.nonzero(length_class == cls)[0]
        column_of = _np.zeros(n_groups, dtype=_np.int64)
        column_of[members] = _np.arange(len(members), dtype=_np.int64)
        in_class = element_class == cls
        member_codes = sorted_codes[in_class]
        # Front-pad: group g's run lands in the last counts[g] rows, with
        # row 0 always zero so the fold starts from +0.0.
        rows = cls - counts[member_codes] + pos[in_class] + 1
        matrix = _np.zeros((cls + 1, max(2, len(members))), dtype=_np.float64)
        matrix[rows, column_of[member_codes]] = sorted_values[in_class]
        # Serial Python float addition overflows to inf (and inf + -inf to
        # nan) silently; keep the vectorized fold as quiet.
        with _np.errstate(over="ignore", invalid="ignore"):
            folded = _np.add.reduce(matrix, axis=0)
        totals[members] = folded[: len(members)]
    return totals.tolist()


def int_group_sums(values, codes, n_groups: int, layout=None) -> list:
    """Exact SUM per group for an int64 array (no NULLs).

    Integer addition is associative, so ``np.add.reduceat`` is exact as
    long as no partial can wrap int64; otherwise the fold runs over the
    object-dtype view, adding arbitrary-precision Python ints.  Every
    group must own at least one row.  ``layout`` optionally supplies a
    precomputed ``group_layout(codes, n_groups)``.  Returns Python ints.
    """
    counts, order, starts = (
        layout if layout is not None else group_layout(codes, n_groups)
    )
    sorted_values = values[order]
    largest = max(-int(sorted_values.min()), int(sorted_values.max()))
    if largest and int(counts.max()) > (2**62) // largest:
        return [int(t) for t in _np.add.reduceat(
            sorted_values.astype(object), starts
        )]
    return _np.add.reduceat(sorted_values, starts).tolist()


def object_group_sums(values: Sequence, codes: Sequence, n_groups: int) -> list:
    """SUM per group for Python values — the serial fold verbatim, with
    per-group left-to-right order preserved (NULLs skip, all-NULL groups
    keep the integer 0 start, type errors propagate like serial)."""
    totals = [0] * n_groups
    for code, value in zip(codes, values):
        if value is not None:
            totals[code] = totals[code] + value
    return totals


def minmax_group_fold(
    values, codes, n_groups: int, maximum: bool, layout=None
) -> list:
    """MIN or MAX per group for an int64/float64 array (no NULLs).

    ``np.minimum/maximum.reduceat`` is bitwise-exact whenever the
    extremum is unique at the bit level; groups where it is not — any
    group containing ``±0.0`` (NumPy ties keep the second operand, the
    serial strict comparison keeps the first) or NaN (unordered under
    comparison) — are detected vectorially and recomputed with the serial
    keep-first loop.  Every group must own at least one row.  ``layout``
    optionally supplies a precomputed ``group_layout(codes, n_groups)``.
    """
    counts, order, starts = (
        layout if layout is not None else group_layout(codes, n_groups)
    )
    sorted_values = values[order]
    ufunc = _np.maximum if maximum else _np.minimum
    out = ufunc.reduceat(sorted_values, starts).tolist()
    if values.dtype == _np.float64:
        hazard = _np.isnan(values) | (values == 0.0)
        if hazard.any():
            flagged = _np.bincount(codes[hazard], minlength=n_groups)
            for g in _np.nonzero(flagged)[0].tolist():
                run = sorted_values[starts[g] : starts[g] + counts[g]].tolist()
                best = None
                for value in run:
                    if best is None or (
                        value > best if maximum else value < best
                    ):
                        best = value
                out[g] = best
    return out


def object_group_minmax(
    values: Sequence, codes: Sequence, n_groups: int, maximum: bool
) -> list:
    """MIN/MAX per group for Python values — the serial keep-first fold
    verbatim (NULLs skip; all-NULL groups stay None)."""
    best = [None] * n_groups
    if maximum:
        for code, value in zip(codes, values):
            if value is not None and (best[code] is None or value > best[code]):
                best[code] = value
    else:
        for code, value in zip(codes, values):
            if value is not None and (best[code] is None or value < best[code]):
                best[code] = value
    return best


def left_fold_sum(values: Sequence):
    """``total = 0; for v in values: total += v`` — exact, with the matrix
    fold fast path for all-float runs.

    Used to finalise parallel pre-aggregation value runs: the run is one
    group's non-NULL values in row order, so one sequential fold at the
    merge point reproduces the serial total bit-for-bit.  Runs holding
    any non-float (Python int arithmetic keeps integer totals exact and
    type-visible in the output) take the plain loop.
    """
    n = len(values)
    if (
        _KERNELS_OK
        and n > 16
        and all(type(value) is float for value in values)
    ):
        matrix = _np.zeros((n + 1, 2), dtype=_np.float64)
        matrix[1:, 0] = values
        with _np.errstate(over="ignore", invalid="ignore"):
            return _np.add.reduce(matrix, axis=0)[0].item()
    total = 0
    for value in values:
        total += value
    return total


# ----------------------------------------------------------------------
# Vectorized join probe
# ----------------------------------------------------------------------


class ProbeIndex:
    """A sorted build-key index answering whole probe batches at once.

    Built once per hash join from the finished build table: every
    (key, build-row) pair is flattened in hash-table order — key groups
    in insertion order, rows within a key in build order — then stably
    sorted by key, so ``searchsorted`` ranges enumerate a key's matches
    in exactly the serial lookup's emission order.
    """

    __slots__ = ("sorted_keys", "flat_rows")

    def __init__(self, sorted_keys, flat_rows) -> None:
        self.sorted_keys = sorted_keys
        self.flat_rows = flat_rows

    @staticmethod
    def _sorted(keys, rows) -> "ProbeIndex":
        order = _np.argsort(keys, kind="stable")
        return ProbeIndex(keys[order], [rows[i] for i in order.tolist()])

    @classmethod
    def from_int_keys(cls, hash_table: dict) -> "ProbeIndex | None":
        """Index over plain-int build keys, or None when any key falls
        outside int64's exact domain (floats and bools can equal an int
        under Python ``==`` but not under int64 comparison, so any
        non-int key disables the kernel for the whole join)."""
        if _np is None:
            return None
        repeated: list = []
        rows: list = []
        for key, matches in hash_table.items():
            if type(key) is not int:
                return None
            repeated.extend([key] * len(matches))
            rows.extend(matches)
        try:
            keys = _np.array(repeated, dtype=_np.int64)
        except OverflowError:
            return None
        return cls._sorted(keys, rows)

    @classmethod
    def from_dict_keys(cls, hash_table: dict, dictionary) -> "ProbeIndex | None":
        """Index over a dictionary-encoded probe column's code space.

        Build keys map through the probe dictionary: equal values share a
        code (dict equality — the serial lookup's own notion), NULL is
        code -1, and keys absent from the dictionary get sub--1 codes no
        probe row can carry, so they never match — exactly like the
        serial ``hash_table.get`` missing every probe value.
        """
        if _np is None:
            return None
        code_of = dictionary.codes.get
        repeated: list = []
        rows: list = []
        missing = -2
        for key, matches in hash_table.items():
            if key is None:
                code = -1
            else:
                try:
                    code = code_of(key)
                except TypeError:
                    return None
                if code is None:
                    code = missing
                    missing -= 1
            repeated.extend([code] * len(matches))
            rows.extend(matches)
        return cls._sorted(_np.array(repeated, dtype=_np.int64), rows)

    def probe(self, keys, batch) -> list:
        """All join matches for one probe batch, in serial emission order.

        ``keys`` is the batch's key column (int64 values or dictionary
        codes) aligned with ``batch``; the result rows are
        ``build_row + probe_row`` ordered by probe position, matches in
        build order within each.
        """
        sorted_keys = self.sorted_keys
        lo = _np.searchsorted(sorted_keys, keys, side="left")
        hi = _np.searchsorted(sorted_keys, keys, side="right")
        match_counts = hi - lo
        matched = _np.nonzero(match_counts)[0]
        if not len(matched):
            return []
        match_counts = match_counts[matched]
        total = int(match_counts.sum())
        run_offsets = _np.cumsum(match_counts) - match_counts
        slots = (
            _np.arange(total, dtype=_np.int64)
            - _np.repeat(run_offsets, match_counts)
            + _np.repeat(lo[matched], match_counts)
        )
        probe_positions = _np.repeat(matched, match_counts)
        flat_rows = self.flat_rows
        return [
            flat_rows[slot] + batch[position]
            for slot, position in zip(slots.tolist(), probe_positions.tolist())
        ]
