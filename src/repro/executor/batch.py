"""Batch (vectorized) physical operator implementations.

The MonetDB/X100 recipe applied to this engine: every operator consumes and
yields *lists of rows* of roughly ``EngineConfig.batch_size`` tuples, so
Python's generator-dispatch overhead, the cost-clock charges and the
``_tracked`` bookkeeping are all amortised over a batch instead of paid per
tuple.  Hot inner loops run as list comprehensions over precompiled
closures (cached on the plan node, shared with the row path).

Parity contract: for any plan, the batch path produces **the same rows in
the same order, the same cost-clock charges and the same observed
statistics** as the row path in :mod:`repro.executor.iterators`.  The
charging formulas and charge *ordering* are replicated exactly — scans
charge per page as pages are read, streaming operators charge once at end
of stream from running totals, blocking operators charge at their blocking
point — and statistics collectors consume batches in row order, so
reservoir-sampling RNG streams are bit-identical.  The parity suite in
``tests/test_batch_executor.py`` enforces this.

Re-optimization semantics (paper Figure 6) are unchanged: plan switches are
honoured at the same blocking-operator boundaries (hash join build end,
block-NL inner materialisation), which are always batch boundaries too, and
the cut operator spools its output into the directive's temporary table
before :class:`~repro.executor.runtime.PlanSwitched` unwinds to the
dispatcher.

The one deliberate exception is LIMIT: its subtree executes row-at-a-time
(via :func:`~repro.executor.iterators.execute_node`) because early
termination must stop upstream work — and upstream cost charges — at
exactly the limit row, which a read-ahead batch would overshoot.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterator

from ..errors import ExecutionError
from ..optimizer.cost_model import OperatorCost, pages_for
from ..plans.physical import (
    BlockNLJoinNode,
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    StatsCollectorNode,
)
from ..storage.table import Row
from .collector import RuntimeCollector
from .iterators import (
    _AggState,
    aggregate_items,
    execute_node,
    hash_join_keys,
    key_extractor,
)
from .runtime import PlanSwitched, RuntimeContext
from .vector import compile_batch_filter, compile_batch_projector

Batch = list

#: Iterator over row batches; no batch is ever empty.
BatchIterator = Iterator[Batch]


def execute_node_batches(node: PlanNode, ctx: RuntimeContext) -> BatchIterator:
    """Execute a plan subtree, yielding non-empty batches of result rows."""
    if ctx.execution_mode == "parallel":
        from .parallel import morsel_pipeline

        # Leaf pipelines (scan + filters/projections + collector) fan out
        # across the morsel worker pool; the merged stream is batch-path
        # identical, including bookkeeping, so no _tracked wrapper here.
        parallel_stream = morsel_pipeline(node, ctx)
        if parallel_stream is not None:
            return parallel_stream
    elif ctx.execution_mode == "columnar":
        from .columnar import columnar_pipeline

        # Leaf pipelines with vectorizable filters run over the table's
        # column arrays with zone-map skipping; the stream is batch-path
        # identical, including bookkeeping, so no _tracked wrapper here.
        columnar_stream = columnar_pipeline(node, ctx)
        if columnar_stream is not None:
            return columnar_stream
    executor = _BATCH_EXECUTORS.get(type(node))
    if executor is None:
        raise ExecutionError(f"no batch executor for node type {type(node).__name__}")
    return _tracked(node, ctx, executor(node, ctx))


def _tracked(node: PlanNode, ctx: RuntimeContext, gen: BatchIterator) -> BatchIterator:
    """Start/complete/row-count bookkeeping, folded into per-batch counts."""
    ctx.mark_started(node)
    count = 0
    for batch in gen:
        count += len(batch)
        yield batch
    ctx.mark_completed(node, count)


def _chunked(rows: list, size: int) -> BatchIterator:
    """Re-batch a materialised row list into batches of ``size``."""
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


def _batch_residual(node: PlanNode):
    """Source-compiled residual filter over joined rows, or None."""
    predicates = getattr(node, "residual", None)
    if predicates is None:
        predicates = node.predicates
    if not predicates:
        return None
    return node.compiled(
        "batch_residual", lambda: compile_batch_filter(predicates, node.schema)
    )


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------


def _seq_scan(node: SeqScanNode, ctx: RuntimeContext) -> BatchIterator:
    table = ctx.catalog.table(node.table_name)
    cpu_per_tuple = ctx.cost_model.params.cpu_per_tuple
    batch_size = ctx.batch_size
    access = ctx.buffer_pool.access
    charge_cpu = ctx.clock.charge_cpu
    table_id = table.table_id
    batch: list[Row] = []
    for page_no, page_rows in enumerate(table.iter_pages()):
        access(table_id, page_no, sequential=True)
        charge_cpu(len(page_rows) * cpu_per_tuple)
        batch.extend(page_rows)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def _index_scan(node: IndexScanNode, ctx: RuntimeContext) -> BatchIterator:
    table = ctx.catalog.table(node.table_name)
    index = ctx.catalog.index_on(node.table_name, node.index_column)
    if index is None:
        raise ExecutionError(
            f"index on {node.table_name}.{node.index_column} disappeared"
        )
    row_indices = index.lookup_range(
        node.low, node.high, node.low_inclusive, node.high_inclusive
    )
    matches = len(row_indices)
    fetch_seq, fetch_rand = index.fetch_page_reads(matches)
    ctx.charge(
        OperatorCost(
            seq_read_pages=index.leaf_pages_for(matches) + fetch_seq,
            rand_read_pages=index.height + fetch_rand,
            cpu_units=matches * ctx.cost_model.params.cpu_per_tuple,
        )
    )
    rows = table.rows
    for chunk in _chunked(row_indices, ctx.batch_size):
        yield [rows[i] for i in chunk]


# ----------------------------------------------------------------------
# Streaming operators
# ----------------------------------------------------------------------


def _filter(node: FilterNode, ctx: RuntimeContext) -> BatchIterator:
    batch_filter = node.compiled(
        "batch_filter",
        lambda: compile_batch_filter(node.predicates, node.child.schema),
    )
    per_row = max(1, len(node.predicates)) * ctx.cost_model.params.cpu_per_compare
    consumed = 0
    try:
        for batch in execute_node_batches(node.child, ctx):
            consumed += len(batch)
            passed = batch_filter(batch)
            if passed:
                yield passed
    finally:
        ctx.clock.charge_cpu(consumed * per_row)


def _project(node: ProjectNode, ctx: RuntimeContext) -> BatchIterator:
    batch_project = node.compiled(
        "batch_project",
        lambda: compile_batch_projector(node.output, node.child.schema),
    )
    consumed = 0
    try:
        for batch in execute_node_batches(node.child, ctx):
            consumed += len(batch)
            yield batch_project(batch)
    finally:
        ctx.clock.charge_cpu(consumed * ctx.cost_model.params.cpu_per_tuple)


def _collector(node: StatsCollectorNode, ctx: RuntimeContext) -> BatchIterator:
    collector = RuntimeCollector(node, node.child.schema, ctx.config)
    params = ctx.cost_model.params
    per_row = (
        params.cpu_stats_per_tuple
        + node.spec.statistic_count * params.cpu_stats_per_statistic
    )
    observe_batch = collector.observe_batch
    for batch in execute_node_batches(node.child, ctx):
        observe_batch(batch)
        yield batch
    ctx.clock.charge_stats_cpu(collector.row_count * per_row)
    observed = collector.finalize()
    ctx.observed[node.node_id] = observed
    if ctx.tracer is not None:
        ctx.tracer.instant(
            "collector-complete", "stats",
            node_id=node.node_id, observed=observed.describe(),
        )
    if ctx.controller is not None:
        ctx.controller.on_collector_complete(node, observed)


def _limit(node: LimitNode, ctx: RuntimeContext) -> BatchIterator:
    if node.limit <= 0:
        return
    if isinstance(node.child, (SortNode, HashAggregateNode)):
        # Fully-blocking child: every upstream charge lands at the child's
        # blocking point before its first output batch, so truncating its
        # (already-paid-for) output stream is charge-identical to the row
        # path — and the whole subtree still executes batched.
        emitted = 0
        tail: list[Row] = []
        for batch in execute_node_batches(node.child, ctx):
            take = node.limit - emitted
            if take <= len(batch):
                emitted += take
                tail = batch[:take]
                break
            emitted += len(batch)
            yield batch
        ctx.clock.charge_cpu(emitted * ctx.cost_model.params.cpu_per_tuple)
        if tail:
            yield tail
        return
    # Streaming subtree: run it on the row path — batch read-ahead would
    # consume (and charge for) rows past the limit that row execution
    # never touches.
    batch_size = ctx.batch_size
    batch: list[Row] = []
    emitted = 0
    for row in execute_node(node.child, ctx):
        batch.append(row)
        emitted += 1
        if emitted >= node.limit:
            break
        if len(batch) >= batch_size:
            yield batch
            batch = []
    ctx.clock.charge_cpu(emitted * ctx.cost_model.params.cpu_per_tuple)
    if batch:
        yield batch


# ----------------------------------------------------------------------
# Hash join
# ----------------------------------------------------------------------


def _hash_join(node: HashJoinNode, ctx: RuntimeContext) -> BatchIterator:
    build_key, probe_key = hash_join_keys(node)
    residual_filter = _batch_residual(node)
    page_size = ctx.catalog.page_size

    # --- build phase (blocking) ---
    # A leaf-extractable build side can fan out across the morsel worker
    # pool: workers fold partition hash tables merged in morsel order, so
    # the merged table is observationally identical to the serial loop's.
    built = None
    if ctx.execution_mode == "parallel":
        from .parallel import morsel_build_table

        built = morsel_build_table(node, ctx)
    if built is not None:
        hash_table, build_rows, grant = built
    else:
        hash_table = {}
        setdefault = hash_table.setdefault
        build_rows = 0
        grant = None
        responsive = ctx.config.responsive_hash_joins
        for batch in execute_node_batches(node.build, ctx):
            if grant is None and not responsive:
                grant = ctx.commit_memory(node)
            build_rows += len(batch)
            for row in batch:
                setdefault(build_key(row), []).append(row)
    if grant is None:
        grant = ctx.commit_memory(node)
    build_pages = pages_for(build_rows, node.build.schema.row_bytes, page_size)
    ctx.charge(ctx.cost_model.hash_join_build(build_rows, build_pages, grant))

    # --- plan-switch window: build done, probe not started ---
    directive = ctx.take_switch_for(node.node_id)

    # With the build side materialized (and the switch window resolved),
    # a leaf-extractable probe child can fan out across the morsel worker
    # pool: forked workers inherit the finished hash table copy-on-write
    # and run the probe lookup as the pipeline's top stage.  The merged
    # stream — batches, charges, statistics — is byte-identical to
    # probe_batches() below, so a pending switch spools the same temp
    # table either way.
    if ctx.execution_mode == "parallel":
        from .parallel import morsel_probe_pipeline

        parallel_probe = morsel_probe_pipeline(
            node, ctx, hash_table, build_pages, grant
        )
        if parallel_probe is not None:
            if directive is not None:
                _materialize_and_switch(node, ctx, directive, parallel_probe)
            yield from parallel_probe
            return

    # On the columnar path the probe child's keys are read straight off
    # its column arrays (zone-map skipping included); the batches are the
    # ones the plain pipeline would yield, so the loop below is unchanged
    # — it just stops re-extracting keys row by row.
    keyed_probe = None
    vector_probe = None
    if ctx.execution_mode == "columnar":
        from .columnar import columnar_keyed_batches, columnar_probe_stream

        # Single-key joins over an int64 or dictionary-encoded probe
        # column can answer whole batches through the sorted build-key
        # index — emission order and charges identical to the loop below.
        if len(node.key_pairs) == 1:
            vector_probe = columnar_probe_stream(
                node.probe,
                ctx,
                node.probe.schema.index_of(node.key_pairs[0][1]),
                hash_table,
            )
        if vector_probe is None:
            keyed_probe = columnar_keyed_batches(
                node.probe,
                ctx,
                [node.probe.schema.index_of(col) for __, col in node.key_pairs],
            )

    def probe_batches() -> BatchIterator:
        probe_count = 0
        output_count = 0
        get = hash_table.get
        source = keyed_probe
        if vector_probe is None and source is None:
            source = (
                (batch, map(probe_key, batch))
                for batch in execute_node_batches(node.probe, ctx)
            )
        try:
            if vector_probe is not None:
                stream, index = vector_probe
                probe_kernel = index.probe
                for batch, key_array in stream:
                    probe_count += len(batch)
                    out = probe_kernel(key_array, batch)
                    if residual_filter is not None:
                        out = residual_filter(out)
                    if out:
                        output_count += len(out)
                        yield out
            else:
                for batch, keys in source:
                    probe_count += len(batch)
                    out: list[Row] = []
                    append = out.append
                    extend = out.extend
                    # Key extraction and hash lookups run under map() at C
                    # speed; the Python loop body only fires to emit matches.
                    for prow, matches in zip(batch, map(get, keys)):
                        if matches is None:
                            continue
                        if len(matches) == 1:
                            append(matches[0] + prow)
                        else:
                            extend([brow + prow for brow in matches])
                    if residual_filter is not None:
                        out = residual_filter(out)
                    if out:
                        output_count += len(out)
                        yield out
        finally:
            if vector_probe is not None:
                per_node = ctx.vector.by_node.setdefault(
                    node.node_id,
                    {"kind": "probe", "rows_probed": 0, "matches": 0},
                )
                per_node["rows_probed"] += probe_count
                per_node["matches"] += output_count
            probe_pages = pages_for(
                probe_count, node.probe.schema.row_bytes, page_size
            )
            ctx.charge(
                ctx.cost_model.hash_join_probe(
                    build_pages=build_pages,
                    probe_rows=probe_count,
                    probe_pages=probe_pages,
                    output_rows=output_count,
                    memory_pages=grant,
                )
            )

    if directive is not None:
        _materialize_and_switch(node, ctx, directive, probe_batches())
    yield from probe_batches()


def _materialize_and_switch(
    node: PlanNode,
    ctx: RuntimeContext,
    directive,
    batches: BatchIterator,
) -> None:
    """Spool a cut operator's output into the directive's temp table."""
    materialized: list[Row] = []
    for batch in batches:
        materialized.extend(batch)
    directive.temp_table.append_rows(materialized)
    for page_no in range(directive.temp_table.page_count):
        ctx.buffer_pool.write(directive.temp_table.table_id, page_no)
    ctx.mark_completed(node, len(materialized))
    ctx.switches += 1
    if ctx.tracer is not None:
        ctx.tracer.instant(
            "switch-materialize", "reopt",
            cut_node_id=node.node_id,
            rows=len(materialized),
            temp_pages=directive.temp_table.page_count,
        )
    raise PlanSwitched(directive, len(materialized))


# ----------------------------------------------------------------------
# Indexed nested loops join
# ----------------------------------------------------------------------


def _index_nl_join(node: IndexNLJoinNode, ctx: RuntimeContext) -> BatchIterator:
    inner_table = ctx.catalog.table(node.inner_table)
    index = ctx.catalog.index_on(node.inner_table, node.inner_column)
    if index is None:
        raise ExecutionError(
            f"index on {node.inner_table}.{node.inner_column} disappeared"
        )
    outer_position = node.outer.schema.index_of(node.outer_column)
    residual_filter = _batch_residual(node)
    lookup_eq = index.lookup_eq
    inner_rows = inner_table.rows
    outer_count = 0
    matches_total = 0
    output_count = 0
    get_outer = itemgetter(outer_position)
    # Outer keys repeat heavily in FK joins; memoizing the (pure) index
    # lookups trades memory for skipping most bisect probes.
    lookup_cache: dict[object, list[int]] = {}
    cache_get = lookup_cache.get
    try:
        for batch in execute_node_batches(node.outer, ctx):
            outer_count += len(batch)
            out: list[Row] = []
            append = out.append
            extend = out.extend
            for orow, key in zip(batch, map(get_outer, batch)):
                row_indices = cache_get(key)
                if row_indices is None:
                    row_indices = lookup_cache[key] = lookup_eq(key)
                if not row_indices:
                    continue
                matches_total += len(row_indices)
                if len(row_indices) == 1:
                    append(orow + inner_rows[row_indices[0]])
                else:
                    extend([orow + inner_rows[i] for i in row_indices])
            if residual_filter is not None:
                out = residual_filter(out)
            if out:
                output_count += len(out)
                yield out
    finally:
        ctx.charge(
            ctx.cost_model.index_nl_join(
                outer_rows=outer_count,
                height=index.height,
                entries_per_leaf=index.entries_per_leaf,
                matches_total=matches_total,
                clustered=index.clustered,
                inner_table_pages=inner_table.page_count,
                output_rows=output_count,
            )
        )


# ----------------------------------------------------------------------
# Block nested loops join
# ----------------------------------------------------------------------


def _block_nl_join(node: BlockNLJoinNode, ctx: RuntimeContext) -> BatchIterator:
    page_size = ctx.catalog.page_size
    predicate_filter = _batch_residual(node)
    inner_rows: list[Row] = []
    for batch in execute_node_batches(node.inner, ctx):
        inner_rows.extend(batch)
    inner_pages = pages_for(len(inner_rows), node.inner.schema.row_bytes, page_size)

    directive = ctx.take_switch_for(node.node_id)

    rows_per_page = node.outer.schema.rows_per_page(page_size)
    params = ctx.cost_model.params

    def joined_batches() -> BatchIterator:
        grant = ctx.commit_memory(node)
        block_rows = max(1, (max(1, grant - 2)) * rows_per_page)
        block: list[Row] = []
        blocks_done = 0
        compares = 0

        def flush(block_: list[Row]) -> list[Row]:
            nonlocal blocks_done, compares
            if blocks_done > 0:
                # Re-scan of the (materialised) inner per additional block.
                ctx.clock.charge_seq_read(inner_pages)
            blocks_done += 1
            compares += len(block_) * len(inner_rows)
            out: list[Row] = []
            extend = out.extend
            if predicate_filter is not None:
                for orow in block_:
                    extend(
                        predicate_filter([orow + irow for irow in inner_rows])
                    )
            else:
                for orow in block_:
                    extend([orow + irow for irow in inner_rows])
            return out

        try:
            for batch in execute_node_batches(node.outer, ctx):
                start = 0
                remaining = len(batch)
                while remaining > 0:
                    take = min(block_rows - len(block), remaining)
                    block.extend(batch[start : start + take])
                    start += take
                    remaining -= take
                    if len(block) >= block_rows:
                        out = flush(block)
                        block = []
                        if out:
                            yield out
            if block:
                out = flush(block)
                if out:
                    yield out
        finally:
            ctx.clock.charge_cpu(compares * params.cpu_per_compare)

    if directive is not None:
        _materialize_and_switch(node, ctx, directive, joined_batches())
    yield from joined_batches()


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


def _hash_aggregate(node: HashAggregateNode, ctx: RuntimeContext) -> BatchIterator:
    child_schema = node.child.schema
    group_positions, agg_items, group_outputs = aggregate_items(node)
    # Scalar keys for single-column grouping; () for a single global group.
    get_key = key_extractor(group_positions) if group_positions else None
    scalar_key = len(group_positions) == 1

    # ``groups`` keeps first-occurrence insertion order, like the row path.
    # Each batch is bucketed by key first (key extraction under map() at C
    # speed), then every aggregate folds a whole per-group value run with
    # _AggState.update_batch — bit-identical to per-row update() because
    # runs preserve row order and fold left-to-right.
    groups: dict[object, list[_AggState]] = {}
    input_rows = 0
    grant: int | None = None
    preaggregated = None
    keyed_input = None
    if ctx.execution_mode == "parallel":
        from .parallel import morsel_preaggregate

        # Workers fold their morsels into per-group partials and ship
        # those instead of rows; partials merge in morsel order, so group
        # states, group order and every output byte match the serial fold.
        # Float SUM/AVG partials travel as ordered value runs folded once
        # at the merge point (vectorized_agg); returns None (and we fold
        # serially below) only for non-numeric SUM/AVG arguments, or for
        # float aggregates when the knob is off.
        preaggregated = morsel_preaggregate(node, ctx)
    elif ctx.execution_mode == "columnar":
        from .columnar import columnar_keyed_batches, columnar_vectorized_aggregate

        # Best case the whole aggregate runs in column space: keys
        # factorize straight off the column arrays and every fold runs in
        # the vectorized kernels, bit-identical to the serial accumulator
        # (executor/agg_kernels.py documents the parity argument).
        preaggregated = columnar_vectorized_aggregate(node, ctx)
        if preaggregated is None and group_positions:
            # Group keys still come straight off the input pipeline's
            # column arrays; the fold below is unchanged, it just skips
            # per-row extraction.
            keyed_input = columnar_keyed_batches(node.child, ctx, group_positions)
    if preaggregated is not None:
        groups, input_rows, grant = preaggregated
    else:
        source = keyed_input
        if source is None:
            source = (
                (batch, None) for batch in execute_node_batches(node.child, ctx)
            )
        for batch, keys in source:
            if grant is None:
                grant = ctx.commit_memory(node)
            input_rows += len(batch)
            if get_key is None:
                buckets = {(): batch}
            else:
                buckets = {}
                setdefault = buckets.setdefault
                key_iter = map(get_key, batch) if keys is None else keys
                for key, row in zip(key_iter, batch):
                    setdefault(key, []).append(row)
            for key, rows_ in buckets.items():
                states = groups.get(key)
                if states is None:
                    states = [_AggState(func) for __, func, __unused in agg_items]
                    groups[key] = states
                for state, (__, __f, arg_fn) in zip(states, agg_items):
                    if arg_fn is None:
                        state.count += len(rows_)  # COUNT(*): update(1) per row
                    else:
                        state.update_batch(list(map(arg_fn, rows_)))
    if grant is None:
        grant = ctx.commit_memory(node)
    if not node.group_by and not groups:
        groups[()] = [_AggState(func) for __, func, __unused in agg_items]

    page_size = ctx.catalog.page_size
    input_pages = pages_for(input_rows, child_schema.row_bytes, page_size)
    group_pages = pages_for(len(groups), node.schema.row_bytes, page_size)
    ctx.charge(
        ctx.cost_model.aggregate(
            input_rows=input_rows,
            input_pages=input_pages,
            group_pages=group_pages,
            memory_pages=grant,
        )
    )
    width = len(node.output)
    key_index_of = {position: i for i, position in enumerate(group_positions)}
    output: list[Row] = []
    for key, states in groups.items():
        out = [None] * width
        for out_index, position in group_outputs:
            out[out_index] = key if scalar_key else key[key_index_of[position]]
        for state, (out_index, __f, __a) in zip(states, agg_items):
            out[out_index] = state.result()
        output.append(tuple(out))
    yield from _chunked(output, ctx.batch_size)


# ----------------------------------------------------------------------
# Distinct and sort
# ----------------------------------------------------------------------


def _distinct(node: DistinctNode, ctx: RuntimeContext) -> BatchIterator:
    seen: set[Row] = set()
    add = seen.add
    input_rows = 0
    grant: int | None = None
    for batch in execute_node_batches(node.child, ctx):
        if grant is None:
            grant = ctx.commit_memory(node)
        input_rows += len(batch)
        fresh: list[Row] = []
        for row in batch:
            if row not in seen:
                add(row)
                fresh.append(row)
        if fresh:
            yield fresh
    if grant is None:
        grant = ctx.commit_memory(node)
    page_size = ctx.catalog.page_size
    ctx.charge(
        ctx.cost_model.aggregate(
            input_rows=input_rows,
            input_pages=pages_for(input_rows, node.schema.row_bytes, page_size),
            group_pages=pages_for(len(seen), node.schema.row_bytes, page_size),
            memory_pages=grant,
        )
    )


def _sort(node: SortNode, ctx: RuntimeContext) -> BatchIterator:
    # A leaf-extractable input can fan out across the morsel worker pool:
    # workers ship sorted runs, merged by a loser tree whose morsel-order
    # tie-break reproduces the serial stable sort byte-for-byte.
    rows = None
    grant: int | None = None
    if ctx.execution_mode == "parallel":
        from .parallel import morsel_sort

        sorted_runs = morsel_sort(node, ctx)
        if sorted_runs is not None:
            rows, grant = sorted_runs
    schema = node.schema
    if rows is None:
        rows = []
        for batch in execute_node_batches(node.child, ctx):
            if grant is None:
                grant = ctx.commit_memory(node)
            rows.extend(batch)
        # Stable multi-key sort: apply keys in reverse significance order.
        for key in reversed(node.keys):
            position = schema.index_of(key.name)
            rows.sort(key=lambda r: r[position], reverse=not key.ascending)
    if grant is None:
        grant = ctx.commit_memory(node)
    page_size = ctx.catalog.page_size
    pages = pages_for(len(rows), schema.row_bytes, page_size)
    ctx.charge(ctx.cost_model.sort(len(rows), pages, grant))
    yield from _chunked(rows, ctx.batch_size)


_BATCH_EXECUTORS = {
    SeqScanNode: _seq_scan,
    IndexScanNode: _index_scan,
    FilterNode: _filter,
    ProjectNode: _project,
    StatsCollectorNode: _collector,
    LimitNode: _limit,
    HashJoinNode: _hash_join,
    IndexNLJoinNode: _index_nl_join,
    BlockNLJoinNode: _block_nl_join,
    HashAggregateNode: _hash_aggregate,
    DistinctNode: _distinct,
    SortNode: _sort,
}
