"""Execution engine: iterators, batch path, memory manager, segments, dispatcher."""

from .batch import execute_node_batches
from .collector import ObservedStatistics, RuntimeCollector
from .dispatcher import DispatchResult, Dispatcher, SwitchEvent
from .iterators import execute_node
from .memory import MemoryDemand, MemoryManager, execution_order, memory_demands
from .runtime import (
    ExecutionController,
    PlanSwitchDirective,
    PlanSwitched,
    RuntimeContext,
)
from .segments import Segment, blocking_input_edges, segment_of, segments

__all__ = [
    "DispatchResult",
    "Dispatcher",
    "ExecutionController",
    "MemoryDemand",
    "MemoryManager",
    "ObservedStatistics",
    "PlanSwitchDirective",
    "PlanSwitched",
    "RuntimeCollector",
    "RuntimeContext",
    "Segment",
    "SwitchEvent",
    "blocking_input_edges",
    "execute_node",
    "execute_node_batches",
    "execution_order",
    "memory_demands",
    "segment_of",
    "segments",
]
