"""Physical operator implementations.

Each plan node executes as a Python generator over row tuples; composition
follows the plan tree.  Operators charge the simulated cost clock using the
*same formulas* the optimizer used for its estimates — evaluated on actual
row counts — so the only source of estimated-vs-actual divergence is
cardinality error, exactly the signal Dynamic Re-Optimization consumes.

Blocking operators (hash join build, block-NL inner, sort, aggregate input)
are where statistics collectors complete and where pending plan switches are
honoured: after a hash join finishes its build and a switch targets it, the
probe phase runs to completion into the directive's temporary table and
:class:`~repro.executor.runtime.PlanSwitched` unwinds to the dispatcher
(paper Figure 6).

The hybrid hash join holds its build rows in a Python dict for result
correctness while charging spill I/O analytically from the granted memory —
the partitioning *cost* of a Grace/hybrid join with the grant the Memory
Manager issued, which is the behaviour the memory experiments measure.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Iterator, Sequence

from ..errors import ExecutionError
from ..optimizer.cost_model import OperatorCost, pages_for
from ..plans.logical import (
    AggFunc,
    AggregateExpr,
    ColumnExpr,
    OutputColumn,
)
from ..plans.physical import (
    BlockNLJoinNode,
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    StatsCollectorNode,
)
from ..storage.table import Row
from .collector import RuntimeCollector
from .runtime import PlanSwitched, RuntimeContext


def execute_node(node: PlanNode, ctx: RuntimeContext) -> Iterator[Row]:
    """Execute a plan subtree, yielding result rows."""
    executor = _EXECUTORS.get(type(node))
    if executor is None:
        raise ExecutionError(f"no executor for node type {type(node).__name__}")
    return _tracked(node, ctx, executor(node, ctx))


def _tracked(node: PlanNode, ctx: RuntimeContext, gen: Iterator[Row]) -> Iterator[Row]:
    """Wrap a node generator with start/complete/row-count bookkeeping."""
    ctx.mark_started(node)
    count = 0
    for row in gen:
        count += 1
        yield row
    ctx.mark_completed(node, count)


# ----------------------------------------------------------------------
# Compiled closures (cached on the plan node, shared with the batch path)
# ----------------------------------------------------------------------


def key_extractor(positions: Sequence[int]) -> Callable[[Row], object]:
    """A closure extracting a join/group key from a row.

    Single-column keys are extracted as scalars, multi-column keys as
    tuples; build and probe sides use extractors built the same way, so the
    representations always agree.
    """
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


def filter_predicates(node: FilterNode) -> tuple[Callable[[Row], bool], ...]:
    """Compiled filter predicates, cached on the node."""
    return node.compiled(
        "predicates",
        lambda: tuple(p.compile(node.child.schema) for p in node.predicates),
    )


def hash_join_keys(
    node: HashJoinNode,
) -> tuple[Callable[[Row], object], Callable[[Row], object]]:
    """Build- and probe-side key extractors, cached on the node."""
    build_key = node.compiled(
        "build_key",
        lambda: key_extractor(
            [node.build.schema.index_of(col) for col, __ in node.key_pairs]
        ),
    )
    probe_key = node.compiled(
        "probe_key",
        lambda: key_extractor(
            [node.probe.schema.index_of(col) for __, col in node.key_pairs]
        ),
    )
    return build_key, probe_key


def residual_predicates(node) -> tuple[Callable[[Row], bool], ...]:
    """Compiled residual/join predicates, cached on the node."""
    predicates = getattr(node, "residual", None)
    if predicates is None:
        predicates = node.predicates
    return node.compiled(
        "residual", lambda: tuple(p.compile(node.schema) for p in predicates)
    )


def projector(node: ProjectNode) -> Callable[[Row], Row]:
    """A closure building one output row, cached on the node.

    All-column projections compile to a single :func:`operator.itemgetter`
    instead of per-column closure calls.
    """

    def build() -> Callable[[Row], Row]:
        child_schema = node.child.schema
        exprs = []
        positions: list[int] = []
        for item in node.output:
            if isinstance(item.expr, AggregateExpr):
                raise ExecutionError("aggregate reached a Project operator")
            exprs.append(item.expr.compile(child_schema))
            if isinstance(item.expr, ColumnExpr):
                positions.append(child_schema.index_of(item.expr.name))
        if len(positions) == len(node.output) and len(positions) > 1:
            return itemgetter(*positions)
        if len(positions) == len(node.output) and len(positions) == 1:
            position = positions[0]
            return lambda row: (row[position],)
        fns = tuple(exprs)
        return lambda row: tuple(fn(row) for fn in fns)

    return node.compiled("projector", build)


AggItem = tuple[int, AggFunc, "Callable | None"]


def aggregate_items(
    node: HashAggregateNode,
) -> tuple[tuple[int, ...], tuple[AggItem, ...], tuple[tuple[int, int], ...]]:
    """Group positions, aggregate items and group outputs, cached on the node."""

    def build():
        child_schema = node.child.schema
        group_positions = tuple(child_schema.index_of(col) for col in node.group_by)
        agg_items: list[AggItem] = []
        group_outputs: list[tuple[int, int]] = []
        for out_index, item in enumerate(node.output):
            if isinstance(item.expr, AggregateExpr):
                arg = item.expr.arg
                if arg is None:
                    arg_fn = None
                elif isinstance(arg, ColumnExpr):
                    # itemgetter extracts at C speed under map() in the
                    # batch path's per-group folds.
                    arg_fn = itemgetter(child_schema.index_of(arg.name))
                else:
                    arg_fn = arg.compile(child_schema)
                agg_items.append((out_index, item.expr.func, arg_fn))
            elif isinstance(item.expr, ColumnExpr):
                group_outputs.append(
                    (out_index, child_schema.index_of(item.expr.name))
                )
            else:
                raise ExecutionError(
                    f"non-aggregate output {item.name!r} must be a group column"
                )
        return group_positions, tuple(agg_items), tuple(group_outputs)

    return node.compiled("aggregate_items", build)


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------


def _seq_scan(node: SeqScanNode, ctx: RuntimeContext) -> Iterator[Row]:
    table = ctx.catalog.table(node.table_name)
    params = ctx.cost_model.params
    for page_no, page_rows in enumerate(table.iter_pages()):
        ctx.buffer_pool.access(table.table_id, page_no, sequential=True)
        ctx.clock.charge_cpu(len(page_rows) * params.cpu_per_tuple)
        yield from page_rows


def _index_scan(node: IndexScanNode, ctx: RuntimeContext) -> Iterator[Row]:
    table = ctx.catalog.table(node.table_name)
    index = ctx.catalog.index_on(node.table_name, node.index_column)
    if index is None:
        raise ExecutionError(
            f"index on {node.table_name}.{node.index_column} disappeared"
        )
    row_indices = index.lookup_range(
        node.low, node.high, node.low_inclusive, node.high_inclusive
    )
    matches = len(row_indices)
    fetch_seq, fetch_rand = index.fetch_page_reads(matches)
    ctx.charge(
        OperatorCost(
            seq_read_pages=index.leaf_pages_for(matches) + fetch_seq,
            rand_read_pages=index.height + fetch_rand,
            cpu_units=matches * ctx.cost_model.params.cpu_per_tuple,
        )
    )
    for i in row_indices:
        yield table.rows[i]


# ----------------------------------------------------------------------
# Streaming operators
# ----------------------------------------------------------------------


def _filter(node: FilterNode, ctx: RuntimeContext) -> Iterator[Row]:
    predicate_fns = filter_predicates(node)
    per_row = max(1, len(predicate_fns)) * ctx.cost_model.params.cpu_per_compare
    consumed = 0
    try:
        for row in execute_node(node.child, ctx):
            consumed += 1
            if all(fn(row) for fn in predicate_fns):
                yield row
    finally:
        ctx.clock.charge_cpu(consumed * per_row)


def _project(node: ProjectNode, ctx: RuntimeContext) -> Iterator[Row]:
    project_row = projector(node)
    consumed = 0
    try:
        for row in execute_node(node.child, ctx):
            consumed += 1
            yield project_row(row)
    finally:
        ctx.clock.charge_cpu(consumed * ctx.cost_model.params.cpu_per_tuple)


def _collector(node: StatsCollectorNode, ctx: RuntimeContext) -> Iterator[Row]:
    collector = RuntimeCollector(node, node.child.schema, ctx.config)
    params = ctx.cost_model.params
    per_row = (
        params.cpu_stats_per_tuple
        + node.spec.statistic_count * params.cpu_stats_per_statistic
    )
    for row in execute_node(node.child, ctx):
        collector.observe(row)
        yield row
    ctx.clock.charge_stats_cpu(collector.row_count * per_row)
    observed = collector.finalize()
    ctx.observed[node.node_id] = observed
    if ctx.tracer is not None:
        ctx.tracer.instant(
            "collector-complete", "stats",
            node_id=node.node_id, observed=observed.describe(),
        )
    if ctx.controller is not None:
        ctx.controller.on_collector_complete(node, observed)


def _limit(node: LimitNode, ctx: RuntimeContext) -> Iterator[Row]:
    if node.limit <= 0:
        return
    emitted = 0
    for row in execute_node(node.child, ctx):
        yield row
        emitted += 1
        if emitted >= node.limit:
            break
    ctx.clock.charge_cpu(emitted * ctx.cost_model.params.cpu_per_tuple)


# ----------------------------------------------------------------------
# Hash join
# ----------------------------------------------------------------------


def _hash_join(node: HashJoinNode, ctx: RuntimeContext) -> Iterator[Row]:
    build_key, probe_key = hash_join_keys(node)
    residual_fns = residual_predicates(node)
    page_size = ctx.catalog.page_size

    # --- build phase (blocking) ---
    hash_table: dict[tuple, list[Row]] = {}
    build_rows = 0
    grant: int | None = None
    responsive = ctx.config.responsive_hash_joins
    for row in execute_node(node.build, ctx):
        if grant is None and not responsive:
            # The grant is committed once data actually arrives, so
            # collectors completing deeper in the build pipeline can still
            # re-allocate this operator's memory (paper section 2.3).
            grant = ctx.commit_memory(node)
        hash_table.setdefault(build_key(row), []).append(row)
        build_rows += 1
    if grant is None:
        # Responsive operators (section 2.3 extension) commit at the spill
        # decision point instead, picking up any re-allocation triggered by
        # the collector on their own build input.
        grant = ctx.commit_memory(node)
    build_pages = pages_for(build_rows, node.build.schema.row_bytes, page_size)
    ctx.charge(ctx.cost_model.hash_join_build(build_rows, build_pages, grant))

    # --- plan-switch window: build done, probe not started ---
    directive = ctx.take_switch_for(node.node_id)

    def probe_rows() -> Iterator[Row]:
        probe_count = 0
        output_count = 0
        try:
            for prow in execute_node(node.probe, ctx):
                probe_count += 1
                matches = hash_table.get(probe_key(prow))
                if not matches:
                    continue
                for brow in matches:
                    out = brow + prow
                    if residual_fns and not all(fn(out) for fn in residual_fns):
                        continue
                    output_count += 1
                    yield out
        finally:
            probe_pages = pages_for(
                probe_count, node.probe.schema.row_bytes, page_size
            )
            ctx.charge(
                ctx.cost_model.hash_join_probe(
                    build_pages=build_pages,
                    probe_rows=probe_count,
                    probe_pages=probe_pages,
                    output_rows=output_count,
                    memory_pages=grant,
                )
            )

    if directive is not None:
        materialized = list(probe_rows())
        directive.temp_table.append_rows(materialized)
        for page_no in range(directive.temp_table.page_count):
            ctx.buffer_pool.write(directive.temp_table.table_id, page_no)
        ctx.mark_completed(node, len(materialized))
        ctx.switches += 1
        if ctx.tracer is not None:
            ctx.tracer.instant(
                "switch-materialize", "reopt",
                cut_node_id=node.node_id,
                rows=len(materialized),
                temp_pages=directive.temp_table.page_count,
            )
        raise PlanSwitched(directive, len(materialized))
    yield from probe_rows()


# ----------------------------------------------------------------------
# Indexed nested loops join
# ----------------------------------------------------------------------


def _index_nl_join(node: IndexNLJoinNode, ctx: RuntimeContext) -> Iterator[Row]:
    inner_table = ctx.catalog.table(node.inner_table)
    index = ctx.catalog.index_on(node.inner_table, node.inner_column)
    if index is None:
        raise ExecutionError(
            f"index on {node.inner_table}.{node.inner_column} disappeared"
        )
    outer_position = node.outer.schema.index_of(node.outer_column)
    residual_fns = residual_predicates(node)
    outer_count = 0
    matches_total = 0
    output_count = 0
    try:
        for orow in execute_node(node.outer, ctx):
            outer_count += 1
            row_indices = index.lookup_eq(orow[outer_position])
            matches_total += len(row_indices)
            for i in row_indices:
                out = orow + inner_table.rows[i]
                if residual_fns and not all(fn(out) for fn in residual_fns):
                    continue
                output_count += 1
                yield out
    finally:
        ctx.charge(
            ctx.cost_model.index_nl_join(
                outer_rows=outer_count,
                height=index.height,
                entries_per_leaf=index.entries_per_leaf,
                matches_total=matches_total,
                clustered=index.clustered,
                inner_table_pages=inner_table.page_count,
                output_rows=output_count,
            )
        )


# ----------------------------------------------------------------------
# Block nested loops join
# ----------------------------------------------------------------------


def _block_nl_join(node: BlockNLJoinNode, ctx: RuntimeContext) -> Iterator[Row]:
    page_size = ctx.catalog.page_size
    predicate_fns = residual_predicates(node)
    inner_rows = list(execute_node(node.inner, ctx))
    inner_pages = pages_for(len(inner_rows), node.inner.schema.row_bytes, page_size)

    directive = ctx.take_switch_for(node.node_id)

    rows_per_page = node.outer.schema.rows_per_page(page_size)
    params = ctx.cost_model.params

    def joined() -> Iterator[Row]:
        grant = ctx.commit_memory(node)
        block_rows = max(1, (max(1, grant - 2)) * rows_per_page)
        block: list[Row] = []
        blocks_done = 0
        compares = 0

        def flush(block_: list[Row]) -> Iterator[Row]:
            nonlocal blocks_done, compares
            if blocks_done > 0:
                # Re-scan of the (materialised) inner per additional block.
                ctx.clock.charge_seq_read(inner_pages)
            blocks_done += 1
            for orow in block_:
                for irow in inner_rows:
                    compares += 1
                    out = orow + irow
                    if predicate_fns and not all(fn(out) for fn in predicate_fns):
                        continue
                    yield out

        try:
            for orow in execute_node(node.outer, ctx):
                block.append(orow)
                if len(block) >= block_rows:
                    yield from flush(block)
                    block = []
            if block:
                yield from flush(block)
        finally:
            ctx.clock.charge_cpu(compares * params.cpu_per_compare)

    if directive is not None:
        materialized = list(joined())
        directive.temp_table.append_rows(materialized)
        for page_no in range(directive.temp_table.page_count):
            ctx.buffer_pool.write(directive.temp_table.table_id, page_no)
        ctx.mark_completed(node, len(materialized))
        ctx.switches += 1
        if ctx.tracer is not None:
            ctx.tracer.instant(
                "switch-materialize", "reopt",
                cut_node_id=node.node_id,
                rows=len(materialized),
                temp_pages=directive.temp_table.page_count,
            )
        raise PlanSwitched(directive, len(materialized))
    yield from joined()


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


#: Whether builtin sum() performs a plain left-to-right addition fold.
#: Python 3.12+ switched float sum() to Neumaier compensated summation —
#: more accurate, but not bit-identical to the row path's running
#: ``total += value`` — so the batch path only takes the sum() fast path
#: when the two folds provably agree.
_SUM_IS_LEFT_FOLD = sum([1e16, 1.0, -1e16]) == ((1e16 + 1.0) + -1e16)


class _AggState:
    """Running state for one aggregate expression within one group."""

    __slots__ = ("func", "count", "total", "minimum", "maximum")

    def __init__(self, func: AggFunc) -> None:
        self.func = func
        self.count = 0
        self.total = 0  # stays int for integer inputs, like Python sum()
        self.minimum = None
        self.maximum = None

    def update(self, value) -> None:
        self.count += 1
        if value is None:
            return
        if self.func in (AggFunc.SUM, AggFunc.AVG):
            self.total += value
        elif self.func is AggFunc.MIN:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func is AggFunc.MAX:
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def update_batch(self, values: Sequence) -> None:
        """Fold a whole batch of argument values into the state.

        Equivalent to calling :meth:`update` once per value in order:
        additions and comparisons happen left-to-right over the same
        operands, so float totals and min/max are bit-identical to the
        row path's.  NULL (None) arguments still count but do not fold.
        """
        self.count += len(values)
        func = self.func
        if func is AggFunc.COUNT or not values:
            return
        if func is AggFunc.SUM or func is AggFunc.AVG:
            if _SUM_IS_LEFT_FOLD:
                try:
                    self.total = sum(values, self.total)
                    return
                except TypeError:
                    pass  # None present, or non-numeric values: exact loop.
            total = self.total
            for value in values:
                if value is not None:
                    total += value
            self.total = total
        elif func is AggFunc.MIN:
            try:
                best = min(values)
            except TypeError:
                # None mixed with values: replicate the row path's skip.
                best = None
                for value in values:
                    if value is not None and (best is None or value < best):
                        best = value
            if best is not None and (self.minimum is None or best < self.minimum):
                self.minimum = best
        else:
            try:
                best = max(values)
            except TypeError:
                best = None
                for value in values:
                    if value is not None and (best is None or value > best):
                        best = value
            if best is not None and (self.maximum is None or best > self.maximum):
                self.maximum = best

    def merge(self, other: "_AggState") -> None:
        """Fold another partial state (from a later input run) into this one.

        Exact only when the aggregate's fold is associative down to the
        bit: COUNT, integer SUM/AVG totals (integer addition regroups
        freely) and MIN/MAX, whose strict comparisons keep the earlier
        occurrence just like the serial fold.  Float SUM/AVG partial
        *totals* must never be merged — the parallel pre-aggregation
        path ships their ordered value runs instead and performs one
        exact left fold at the merge point (see executor.parallel).
        """
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum

    def result(self):
        if self.func is AggFunc.COUNT:
            return self.count
        if self.count == 0:
            return None
        if self.func is AggFunc.SUM:
            return self.total
        if self.func is AggFunc.AVG:
            return self.total / self.count
        if self.func is AggFunc.MIN:
            return self.minimum
        return self.maximum


def _hash_aggregate(node: HashAggregateNode, ctx: RuntimeContext) -> Iterator[Row]:
    child_schema = node.child.schema
    group_positions, agg_items, group_outputs = aggregate_items(node)
    groups: dict[tuple, list[_AggState]] = {}
    input_rows = 0
    grant: int | None = None
    for row in execute_node(node.child, ctx):
        if grant is None:
            grant = ctx.commit_memory(node)
        input_rows += 1
        key = tuple(row[p] for p in group_positions)
        states = groups.get(key)
        if states is None:
            states = [_AggState(func) for __, func, __unused in agg_items]
            groups[key] = states
        for state, (__, __f, arg_fn) in zip(states, agg_items):
            state.update(arg_fn(row) if arg_fn is not None else 1)
    if grant is None:
        grant = ctx.commit_memory(node)
    if not node.group_by and not groups:
        groups[()] = [_AggState(func) for __, func, __unused in agg_items]

    page_size = ctx.catalog.page_size
    input_pages = pages_for(input_rows, child_schema.row_bytes, page_size)
    group_pages = pages_for(len(groups), node.schema.row_bytes, page_size)
    ctx.charge(
        ctx.cost_model.aggregate(
            input_rows=input_rows,
            input_pages=input_pages,
            group_pages=group_pages,
            memory_pages=grant,
        )
    )
    width = len(node.output)
    key_index_of = {position: i for i, position in enumerate(group_positions)}
    for key, states in groups.items():
        out = [None] * width
        for out_index, position in group_outputs:
            out[out_index] = key[key_index_of[position]]
        for state, (out_index, __f, __a) in zip(states, agg_items):
            out[out_index] = state.result()
        yield tuple(out)


# ----------------------------------------------------------------------
# Sort
# ----------------------------------------------------------------------


def _distinct(node: DistinctNode, ctx: RuntimeContext) -> Iterator[Row]:
    seen: set[Row] = set()
    input_rows = 0
    grant: int | None = None
    for row in execute_node(node.child, ctx):
        if grant is None:
            grant = ctx.commit_memory(node)
        input_rows += 1
        if row in seen:
            continue
        seen.add(row)
        yield row
    if grant is None:
        grant = ctx.commit_memory(node)
    page_size = ctx.catalog.page_size
    ctx.charge(
        ctx.cost_model.aggregate(
            input_rows=input_rows,
            input_pages=pages_for(input_rows, node.schema.row_bytes, page_size),
            group_pages=pages_for(len(seen), node.schema.row_bytes, page_size),
            memory_pages=grant,
        )
    )


def _sort(node: SortNode, ctx: RuntimeContext) -> Iterator[Row]:
    rows: list[Row] = []
    grant: int | None = None
    for row in execute_node(node.child, ctx):
        if grant is None:
            grant = ctx.commit_memory(node)
        rows.append(row)
    if grant is None:
        grant = ctx.commit_memory(node)
    schema = node.schema
    # Stable multi-key sort: apply keys in reverse significance order.
    for key in reversed(node.keys):
        position = schema.index_of(key.name)
        rows.sort(key=lambda r: r[position], reverse=not key.ascending)
    page_size = ctx.catalog.page_size
    pages = pages_for(len(rows), schema.row_bytes, page_size)
    ctx.charge(ctx.cost_model.sort(len(rows), pages, grant))
    yield from rows


_EXECUTORS = {
    SeqScanNode: _seq_scan,
    IndexScanNode: _index_scan,
    FilterNode: _filter,
    ProjectNode: _project,
    StatsCollectorNode: _collector,
    LimitNode: _limit,
    HashJoinNode: _hash_join,
    IndexNLJoinNode: _index_nl_join,
    BlockNLJoinNode: _block_nl_join,
    HashAggregateNode: _hash_aggregate,
    DistinctNode: _distinct,
    SortNode: _sort,
}
