"""Source-compiled batch predicate evaluation.

The row path evaluates predicates through nested closures — one Python call
per predicate per row plus one per sub-expression.  For a batch path that is
the dominant cost, so filters are compiled *to Python source* instead: the
predicate tree is rendered into a single boolean expression over a row
variable ``r`` and wrapped in a list comprehension, e.g. ::

    def _batch_filter(batch):
        return [r for r in batch if r[3] < _k0 and r[5] == _k1]

which CPython executes with zero function-call overhead per row.  Constants
are bound as namespace cells (``_k0``) rather than rendered with ``repr``,
so any value round-trips exactly.  Sub-expressions that cannot be rendered
(UDF calls) fall back to a bound closure cell called inline, so every
predicate shape compiles.

Semantics parity with the closure path is structural: the rendered
expression performs the same comparisons on the same operands in the same
order (``and`` chains mirror ``all(...)`` short-circuiting, ``or`` mirrors
``any(...)``), so rows pass or fail identically.

Because constants live in namespace cells, the rendered *source* depends
only on the expression structure and the column positions — not on the
constant values.  Two queries filtering ``l.shipdate < :d`` against the
same schema therefore render byte-identical source, and ``compile()`` of
that source is served from a small cross-query code-object cache
(:data:`code_cache_stats` exposes hits/misses); only the cheap ``exec`` of
the pre-compiled ``def`` with fresh cells runs per plan node.
"""

from __future__ import annotations

import operator
import sys
from collections import OrderedDict
from types import CodeType
from typing import Callable, Sequence

try:  # Optional: only the columnar mask kernels need NumPy.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]

from ..plans.logical import (
    AndPredicate,
    ArithExpr,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    InPredicate,
    NegExpr,
    NotPredicate,
    AggregateExpr,
    OrPredicate,
    OutputColumn,
    Predicate,
    ScalarExpr,
)
from ..concurrency import fork_safe_lock
from ..errors import ExecutionError
from ..storage.schema import Schema

#: Cross-query cache of compiled code objects, keyed by source text.
_CODE_CACHE: "OrderedDict[str, CodeType]" = OrderedDict()
_CODE_CACHE_CAPACITY = 512

#: Serializes cache access across concurrent server sessions (the LRU
#: move-to-end/evict sequence is not atomic).  Owned by this module so the
#: post-fork hook replaces it with an unheld lock in pipeline workers.
_CODE_CACHE_LOCK = fork_safe_lock(
    sys.modules[__name__], "_CODE_CACHE_LOCK", reentrant=False
)

#: Observability counters for the code-object cache (tests, benchmarks).
code_cache_stats = {"hits": 0, "misses": 0}


def _instantiate(source: str, filename: str, fn_name: str, cells: dict) -> Callable:
    """Exec ``source`` (compiled once per distinct text) with ``cells`` bound."""
    with _CODE_CACHE_LOCK:
        code = _CODE_CACHE.get(source)
        if code is not None:
            _CODE_CACHE.move_to_end(source)
            code_cache_stats["hits"] += 1
        else:
            code_cache_stats["misses"] += 1
            code = compile(source, filename, "exec")
            _CODE_CACHE[source] = code
            while len(_CODE_CACHE) > _CODE_CACHE_CAPACITY:
                _CODE_CACHE.popitem(last=False)
    namespace = dict(cells)
    exec(code, namespace)  # noqa: S102
    return namespace[fn_name]

#: Python source text for each comparison operator.
_OP_TEXT = {
    CompareOp.EQ: "==",
    CompareOp.NE: "!=",
    CompareOp.LT: "<",
    CompareOp.LE: "<=",
    CompareOp.GT: ">",
    CompareOp.GE: ">=",
}


class _Namespace:
    """Cells (constants, fallback closures) bound into the compiled code."""

    def __init__(self) -> None:
        self.cells: dict[str, object] = {}

    def bind(self, prefix: str, value: object) -> str:
        name = f"_{prefix}{len(self.cells)}"
        self.cells[name] = value
        return name


def _render_expr(expr: ScalarExpr, schema: Schema, ns: _Namespace) -> str:
    if isinstance(expr, ColumnExpr):
        return f"r[{schema.index_of(expr.name)}]"
    if isinstance(expr, ConstExpr):
        return ns.bind("k", expr.value)
    if isinstance(expr, ArithExpr):
        left = _render_expr(expr.left, schema, ns)
        right = _render_expr(expr.right, schema, ns)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, NegExpr):
        return f"(-{_render_expr(expr.child, schema, ns)})"
    # FuncExpr or anything future: call the compiled closure inline.
    return f"{ns.bind('f', expr.compile(schema))}(r)"


def _render_predicate(pred: Predicate, schema: Schema, ns: _Namespace) -> str:
    if isinstance(pred, Comparison):
        left = _render_expr(pred.left, schema, ns)
        right = _render_expr(pred.right, schema, ns)
        return f"{left} {_OP_TEXT[pred.op]} {right}"
    if isinstance(pred, InPredicate):
        # Same membership set as InPredicate.compile builds.
        values = ns.bind("s", set(pred.values))
        return f"{_render_expr(pred.expr, schema, ns)} in {values}"
    if isinstance(pred, AndPredicate):
        return "(" + " and ".join(
            _render_predicate(c, schema, ns) for c in pred.children
        ) + ")"
    if isinstance(pred, OrPredicate):
        return "(" + " or ".join(
            _render_predicate(c, schema, ns) for c in pred.children
        ) + ")"
    if isinstance(pred, NotPredicate):
        return f"(not {_render_predicate(pred.child, schema, ns)})"
    return f"{ns.bind('f', pred.compile(schema))}(r)"


def compile_batch_filter(
    predicates: Sequence[Predicate], schema: Schema
) -> Callable[[list], list]:
    """A function mapping a row batch to the rows passing every predicate.

    Conjuncts short-circuit in sequence order, like the row path's
    ``all(fn(row) for fn in fns)``.
    """
    if not predicates:
        return list
    ns = _Namespace()
    condition = " and ".join(
        f"({_render_predicate(p, schema, ns)})" for p in predicates
    )
    source = f"def _batch_filter(batch):\n    return [r for r in batch if {condition}]"
    return _instantiate(source, "<batch-filter>", "_batch_filter", ns.cells)


def compile_batch_projector(
    output: Sequence[OutputColumn], schema: Schema
) -> Callable[[list], list]:
    """A function mapping a row batch to its projected output rows.

    Renders the whole projection as one tuple-building list comprehension —
    ``[(r[3], (r[1] * _k0)) for r in batch]`` — so no per-row Python call
    remains, matching the row path's per-item expression semantics exactly.
    """
    ns = _Namespace()
    parts = []
    for item in output:
        if isinstance(item.expr, AggregateExpr):
            raise ExecutionError("aggregate reached a batch projector")
        parts.append(_render_expr(item.expr, schema, ns))
    row = f"({parts[0]},)" if len(parts) == 1 else "(" + ", ".join(parts) + ")"
    source = f"def _batch_project(batch):\n    return [{row} for r in batch]"
    return _instantiate(source, "<batch-project>", "_batch_project", ns.cells)


# ----------------------------------------------------------------------
# NumPy mask kernels (columnar execution path)
# ----------------------------------------------------------------------
#
# The columnar executor evaluates a filter as one boolean mask over a page
# group's column arrays instead of one Python expression per row.  A filter
# compiles to a closure tree — per-group overhead is O(tree size), per-row
# work runs inside NumPy — taking a ``resolve(column) -> ndarray`` callback
# so the caller controls where arrays come from (and how dictionary columns
# decode).  Any predicate shape without an exact NumPy equivalent returns
# None and the caller falls back to the tuple-space batch kernel for that
# operator: notably UDF calls, and division by anything but a non-zero
# constant (NumPy's division-by-zero semantics differ from Python's).
#
# Semantics parity: comparisons/arithmetic on int64/float64 arrays follow
# the same integer/IEEE-754 rules as Python scalars; object arrays apply the
# Python operators elementwise.  ``AND`` conjunctions become ``&`` of masks,
# which is equivalent to short-circuit evaluation because predicates are
# side-effect-free.

_MASK_OPS = {
    CompareOp.EQ: operator.eq,
    CompareOp.NE: operator.ne,
    CompareOp.LT: operator.lt,
    CompareOp.LE: operator.le,
    CompareOp.GT: operator.gt,
    CompareOp.GE: operator.ge,
}

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


def _mask_expr(expr: ScalarExpr, schema: Schema, position_map):
    """Compile a scalar expression to ``fn(resolve) -> ndarray | scalar``.

    Returns None when the expression has no exact NumPy kernel.
    """
    if isinstance(expr, ColumnExpr):
        column = position_map(schema.index_of(expr.name))
        return lambda resolve: resolve(column)
    if isinstance(expr, ConstExpr):
        value = expr.value
        return lambda resolve: value
    if isinstance(expr, ArithExpr):
        op = _ARITH_OPS.get(expr.op)
        if op is None:
            return None
        if expr.op == "/":
            # Python raises ZeroDivisionError row by row; NumPy does not.
            # Only a provably non-zero constant divisor is equivalent.
            if not (isinstance(expr.right, ConstExpr) and expr.right.value != 0):
                return None
        left = _mask_expr(expr.left, schema, position_map)
        right = _mask_expr(expr.right, schema, position_map)
        if left is None or right is None:
            return None
        return lambda resolve: op(left(resolve), right(resolve))
    if isinstance(expr, NegExpr):
        child = _mask_expr(expr.child, schema, position_map)
        if child is None:
            return None
        return lambda resolve: -child(resolve)
    return None  # FuncExpr / future shapes: no vector kernel


def _mask_predicate(pred: Predicate, schema: Schema, position_map):
    """Compile a predicate to ``fn(resolve) -> bool ndarray``, or None."""
    if isinstance(pred, Comparison):
        if not pred.columns():
            return None  # constant-only comparison never yields an array
        left = _mask_expr(pred.left, schema, position_map)
        right = _mask_expr(pred.right, schema, position_map)
        if left is None or right is None:
            return None
        op = _MASK_OPS[pred.op]
        return lambda resolve: op(left(resolve), right(resolve))
    if isinstance(pred, InPredicate):
        if not pred.columns():
            return None
        expr = _mask_expr(pred.expr, schema, position_map)
        if expr is None:
            return None
        values = list(pred.values)
        return lambda resolve: _np.isin(expr(resolve), values)
    if isinstance(pred, AndPredicate):
        children = [_mask_predicate(c, schema, position_map) for c in pred.children]
        if any(c is None for c in children):
            return None

        def conjunction(resolve, children=children):
            mask = children[0](resolve)
            for child in children[1:]:
                mask = mask & child(resolve)
            return mask

        return conjunction
    if isinstance(pred, OrPredicate):
        children = [_mask_predicate(c, schema, position_map) for c in pred.children]
        if any(c is None for c in children):
            return None

        def disjunction(resolve, children=children):
            mask = children[0](resolve)
            for child in children[1:]:
                mask = mask | child(resolve)
            return mask

        return disjunction
    if isinstance(pred, NotPredicate):
        child = _mask_predicate(pred.child, schema, position_map)
        if child is None:
            return None
        return lambda resolve: ~child(resolve)
    return None  # UDF predicates and future shapes


def compile_mask_conjuncts(
    predicates: Sequence[Predicate],
    schema: Schema,
    position_map: Callable[[int], int] | None = None,
) -> list | None:
    """Compile a conjunction to one NumPy mask function *per conjunct*.

    Each returned ``fn(resolve) -> bool ndarray`` evaluates over the arrays
    ``resolve`` serves (``resolve`` takes positions already passed through
    ``position_map``, which translates schema positions to base-column
    indices when the filter sits above pure-column projections).  Callers
    must apply the conjuncts *in order, narrowing the row selection between
    them*: that reproduces the serial per-row short-circuit, where a row
    failing conjunct *i* never sees conjunct *i+1* — observable when a
    later conjunct would raise (e.g. a NULL comparison).  Returns None —
    caller falls back to :func:`compile_batch_filter` — when NumPy is
    unavailable or any conjunct lacks an exact kernel.
    """
    if _np is None or not predicates:
        return None
    if position_map is None:
        position_map = lambda position: position  # noqa: E731
    compiled = [_mask_predicate(p, schema, position_map) for p in predicates]
    if any(fn is None for fn in compiled):
        return None
    return compiled


def compile_mask_filter(
    predicates: Sequence[Predicate],
    schema: Schema,
    position_map: Callable[[int], int] | None = None,
) -> Callable | None:
    """Compile a conjunction to one folded NumPy boolean-mask function.

    The eager fold (``&`` across conjuncts) is only short-circuit-safe for
    single-conjunct filters; multi-conjunct callers should prefer
    :func:`compile_mask_conjuncts`.
    """
    compiled = compile_mask_conjuncts(predicates, schema, position_map)
    if compiled is None:
        return None
    if len(compiled) == 1:
        return compiled[0]

    def conjunction(resolve, compiled=compiled):
        mask = compiled[0](resolve)
        for fn in compiled[1:]:
            mask = mask & fn(resolve)
        return mask

    return conjunction
