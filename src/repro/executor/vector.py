"""Source-compiled batch predicate evaluation.

The row path evaluates predicates through nested closures — one Python call
per predicate per row plus one per sub-expression.  For a batch path that is
the dominant cost, so filters are compiled *to Python source* instead: the
predicate tree is rendered into a single boolean expression over a row
variable ``r`` and wrapped in a list comprehension, e.g. ::

    def _batch_filter(batch):
        return [r for r in batch if r[3] < _k0 and r[5] == _k1]

which CPython executes with zero function-call overhead per row.  Constants
are bound as namespace cells (``_k0``) rather than rendered with ``repr``,
so any value round-trips exactly.  Sub-expressions that cannot be rendered
(UDF calls) fall back to a bound closure cell called inline, so every
predicate shape compiles.

Semantics parity with the closure path is structural: the rendered
expression performs the same comparisons on the same operands in the same
order (``and`` chains mirror ``all(...)`` short-circuiting, ``or`` mirrors
``any(...)``), so rows pass or fail identically.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..plans.logical import (
    AndPredicate,
    ArithExpr,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    InPredicate,
    NegExpr,
    NotPredicate,
    OrPredicate,
    Predicate,
    ScalarExpr,
)
from ..storage.schema import Schema

#: Python source text for each comparison operator.
_OP_TEXT = {
    CompareOp.EQ: "==",
    CompareOp.NE: "!=",
    CompareOp.LT: "<",
    CompareOp.LE: "<=",
    CompareOp.GT: ">",
    CompareOp.GE: ">=",
}


class _Namespace:
    """Cells (constants, fallback closures) bound into the compiled code."""

    def __init__(self) -> None:
        self.cells: dict[str, object] = {}

    def bind(self, prefix: str, value: object) -> str:
        name = f"_{prefix}{len(self.cells)}"
        self.cells[name] = value
        return name


def _render_expr(expr: ScalarExpr, schema: Schema, ns: _Namespace) -> str:
    if isinstance(expr, ColumnExpr):
        return f"r[{schema.index_of(expr.name)}]"
    if isinstance(expr, ConstExpr):
        return ns.bind("k", expr.value)
    if isinstance(expr, ArithExpr):
        left = _render_expr(expr.left, schema, ns)
        right = _render_expr(expr.right, schema, ns)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, NegExpr):
        return f"(-{_render_expr(expr.child, schema, ns)})"
    # FuncExpr or anything future: call the compiled closure inline.
    return f"{ns.bind('f', expr.compile(schema))}(r)"


def _render_predicate(pred: Predicate, schema: Schema, ns: _Namespace) -> str:
    if isinstance(pred, Comparison):
        left = _render_expr(pred.left, schema, ns)
        right = _render_expr(pred.right, schema, ns)
        return f"{left} {_OP_TEXT[pred.op]} {right}"
    if isinstance(pred, InPredicate):
        # Same membership set as InPredicate.compile builds.
        values = ns.bind("s", set(pred.values))
        return f"{_render_expr(pred.expr, schema, ns)} in {values}"
    if isinstance(pred, AndPredicate):
        return "(" + " and ".join(
            _render_predicate(c, schema, ns) for c in pred.children
        ) + ")"
    if isinstance(pred, OrPredicate):
        return "(" + " or ".join(
            _render_predicate(c, schema, ns) for c in pred.children
        ) + ")"
    if isinstance(pred, NotPredicate):
        return f"(not {_render_predicate(pred.child, schema, ns)})"
    return f"{ns.bind('f', pred.compile(schema))}(r)"


def compile_batch_filter(
    predicates: Sequence[Predicate], schema: Schema
) -> Callable[[list], list]:
    """A function mapping a row batch to the rows passing every predicate.

    Conjuncts short-circuit in sequence order, like the row path's
    ``all(fn(row) for fn in fns)``.
    """
    if not predicates:
        return list
    ns = _Namespace()
    condition = " and ".join(
        f"({_render_predicate(p, schema, ns)})" for p in predicates
    )
    source = f"def _batch_filter(batch):\n    return [r for r in batch if {condition}]"
    namespace = dict(ns.cells)
    exec(compile(source, "<batch-filter>", "exec"), namespace)  # noqa: S102
    return namespace["_batch_filter"]
