"""The statistics-collector operator's run-time machinery.

A collector examines every tuple streaming past without modifying, copying
or discarding it (paper section 2.2 / 3.1):

* cardinality and average tuple size — a running count (always on),
* min/max per numeric column — a running comparison (always on),
* histograms — a one-page reservoir sample per chosen attribute (Vitter
  [24]), turned into a histogram when the input is exhausted ([19]),
* distinct counts — a Flajolet–Martin sketch per chosen attribute set [6]
  (hybridised with exact counting below a threshold, where PCSA is biased).

No I/O is performed.  The CPU overhead is charged to the clock's dedicated
``stats_cpu`` category so the overhead experiments (E5/E7) can report it.

The result is an :class:`ObservedStatistics`, which converts into a
:class:`~repro.stats.estimator.RelProfile` — *observed*, not estimated —
that the improved-estimate machinery substitutes into the plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Mapping, Sequence

from ..config import EngineConfig
from ..plans.physical import CollectorSpec, StatsCollectorNode
from ..stats.distinct import HybridDistinct, _mix64
from ..stats.histogram import Histogram, HistogramKind, from_sample
from ..stats.sampling import Reservoir
from ..stats.table_stats import ColumnStats
from ..stats.estimator import RelProfile
from ..storage.schema import Schema
from ..storage.table import Row


@dataclass
class ObservedStatistics:
    """Run-time statistics gathered by one collector."""

    node_id: int
    row_count: int
    row_bytes: float
    minmax: Mapping[str, tuple[float, float]] = field(default_factory=dict)
    histograms: Mapping[str, Histogram] = field(default_factory=dict)
    distincts: Mapping[tuple[str, ...], float] = field(default_factory=dict)

    def describe(self) -> dict:
        """Compact JSON-able summary for trace events and EXPLAIN ANALYZE."""
        return {
            "rows": self.row_count,
            "row_bytes": round(self.row_bytes, 1),
            "histograms": sorted(self.histograms),
            "distincts": {
                ", ".join(cols): round(estimate, 1)
                for cols, estimate in sorted(self.distincts.items())
            },
            "minmax_columns": sorted(self.minmax),
        }

    def merge_into_profile(self, estimated: RelProfile | None) -> RelProfile:
        """Build an observed profile, reusing estimated stats where unobserved.

        Observed cardinality always wins; estimated per-column statistics are
        rescaled to the observed row count, then observed histograms, min/max
        and distinct counts override them.
        """
        rows = float(max(self.row_count, 1))
        columns: dict[str, ColumnStats] = {}
        if estimated is not None:
            scale = rows / max(estimated.rows, 1.0)
            for name, stats in estimated.columns.items():
                if not stats.has_histogram:
                    histogram = stats.histogram
                elif scale <= 1.0:
                    # Fewer rows than estimated: rows were removed.
                    histogram = stats.histogram.scaled(scale)
                else:
                    # More rows than estimated: same shape, higher frequency
                    # per value (distincts kept) — crucial so that the
                    # observed cardinality surge propagates into downstream
                    # join-size estimates even without an observed histogram.
                    histogram = stats.histogram.scaled_counts(scale)
                columns[name] = ColumnStats(
                    name=name,
                    dtype=stats.dtype,
                    count=rows,
                    distinct=max(1.0, min(stats.distinct, rows)),
                    min_value=stats.min_value,
                    max_value=stats.max_value,
                    histogram=histogram,
                    is_key=stats.is_key,
                )
        for name, (lo, hi) in self.minmax.items():
            base = columns.get(name)
            if base is not None:
                columns[name] = ColumnStats(
                    name=name,
                    dtype=base.dtype,
                    count=rows,
                    distinct=base.distinct,
                    min_value=lo,
                    max_value=hi,
                    histogram=base.histogram,
                    is_key=base.is_key,
                    observed=True,
                )
            else:
                from ..storage.schema import DataType

                columns[name] = ColumnStats(
                    name=name,
                    dtype=DataType.FLOAT,
                    count=rows,
                    distinct=0.0,  # unknown: estimator falls back to defaults
                    min_value=lo,
                    max_value=hi,
                    observed=True,
                )
        for name, histogram in self.histograms.items():
            base = columns.get(name)
            lo, hi = self.minmax.get(name, (histogram.min_value, histogram.max_value))
            columns[name] = ColumnStats(
                name=name,
                dtype=base.dtype if base is not None else _guess_dtype(histogram),
                count=rows,
                distinct=max(1.0, histogram.total_distinct),
                min_value=lo,
                max_value=hi,
                histogram=histogram,
                is_key=base.is_key if base is not None else False,
                observed=True,
            )
        for columns_key, estimate in self.distincts.items():
            if len(columns_key) != 1:
                continue
            name = columns_key[0]
            base = columns.get(name)
            if base is not None:
                columns[name] = ColumnStats(
                    name=name,
                    dtype=base.dtype,
                    count=rows,
                    distinct=max(1.0, min(estimate, rows)),
                    min_value=base.min_value,
                    max_value=base.max_value,
                    histogram=base.histogram,
                    is_key=base.is_key,
                    observed=True,
                )
        aliases = estimated.aliases if estimated is not None else frozenset()
        return RelProfile(
            rows=rows, row_bytes=self.row_bytes, columns=columns, aliases=aliases
        )


def _guess_dtype(histogram: Histogram):
    from ..storage.schema import DataType

    return DataType.FLOAT if histogram.buckets else DataType.INTEGER


#: Salt for the dedicated reservoir-merge RNG, so merge randomness never
#: aliases the per-reservoir sampling streams derived from the same seed.
_MERGE_RNG_SALT = 0xC2B2AE3D27D4EB4F


@dataclass
class CollectorPartial:
    """Picklable partial collector state for one morsel of input.

    Everything a parallel worker ships back about the statistics side of a
    leaf pipeline: running count, per-column min/max, the distinct sketches
    (bitmap-OR mergeable), and — in merge-mode statistics only — one
    per-morsel-seeded reservoir per histogram column.  Exact-mode workers
    ship ``reservoirs=None``; the parent replays its serially-seeded
    reservoirs over the (already shipped) output rows instead.
    """

    row_count: int
    minmax: dict[str, list]
    sketches: dict[tuple[str, ...], HybridDistinct]
    reservoirs: dict[str, Reservoir] | None


class RuntimeCollector:
    """Per-execution state of one statistics collector."""

    def __init__(
        self,
        node: StatsCollectorNode,
        schema: Schema,
        config: EngineConfig,
        collect_reservoirs: bool = True,
        reservoir_seed: int | None = None,
    ) -> None:
        self.node = node
        self.schema = schema
        self.config = config
        self.row_count = 0
        spec: CollectorSpec = node.spec
        self._numeric_positions: list[tuple[str, int]] = [
            (col.name, i)
            for i, col in enumerate(schema.columns)
            if col.dtype.is_numeric
        ]
        self._minmax: dict[str, list[float]] = {}
        # ``collect_reservoirs=False`` is the exact-statistics parallel
        # worker: reservoir sampling is the one non-mergeable statistic (its
        # sample depends on one serial RNG stream), so workers skip it and
        # the parent replays it over the merged output.  ``reservoir_seed``
        # is the merge-statistics worker: an independent stream per morsel
        # index, making merged samples schedule-independent.
        seed = config.seed if reservoir_seed is None else reservoir_seed
        self._reservoirs: dict[str, tuple[int, Reservoir]] = (
            {
                col: (schema.index_of(col), Reservoir(config.reservoir_sample_size, seed=seed))
                for col in spec.histogram_columns
            }
            if collect_reservoirs
            else {}
        )
        self._merge_rng: random.Random | None = None
        self._sketches: dict[tuple[str, ...], tuple[tuple[int, ...], HybridDistinct]] = {}
        for cols in spec.distinct_column_sets:
            positions = tuple(schema.index_of(c) for c in cols)
            self._sketches[cols] = (positions, HybridDistinct(seed=config.seed))

    def observe(self, row: Row) -> None:
        """Examine one tuple (the hot path of the collector operator)."""
        self.row_count += 1
        for name, position in self._numeric_positions:
            value = row[position]
            entry = self._minmax.get(name)
            if entry is None:
                self._minmax[name] = [value, value]
            else:
                if value < entry[0]:
                    entry[0] = value
                elif value > entry[1]:
                    entry[1] = value
        for position, reservoir in self._reservoirs.values():
            reservoir.add(row[position])
        for positions, sketch in self._sketches.values():
            if len(positions) == 1:
                sketch.add(row[positions[0]])
            else:
                sketch.add(tuple(row[p] for p in positions))

    def observe_batch(self, rows: Sequence[Row]) -> None:
        """Examine one batch of tuples (the batch-path fast path).

        Produces state identical to calling :meth:`observe` per row in
        order — running counts and min/max fold over the batch, reservoir
        and sketch updates preserve per-value order so the reservoir's RNG
        stream (and therefore the final histogram) is bit-identical.
        """
        if not rows:
            return
        self.row_count += len(rows)
        minmax = self._minmax
        for name, position in self._numeric_positions:
            values = list(map(itemgetter(position), rows))
            lo = min(values)
            hi = max(values)
            entry = minmax.get(name)
            if entry is None:
                minmax[name] = [lo, hi]
            else:
                if lo < entry[0]:
                    entry[0] = lo
                if hi > entry[1]:
                    entry[1] = hi
        for position, reservoir in self._reservoirs.values():
            reservoir.add_batch(list(map(itemgetter(position), rows)))
        for positions, sketch in self._sketches.values():
            # itemgetter yields the scalar for one position, the tuple for
            # several — matching observe()'s per-row extraction.
            sketch.add_batch(list(map(itemgetter(*positions), rows)))

    def export_partial(self) -> CollectorPartial:
        """Package this collector's state for shipping to a merging parent."""
        return CollectorPartial(
            row_count=self.row_count,
            minmax={name: list(entry) for name, entry in self._minmax.items()},
            sketches={cols: sketch for cols, (__, sketch) in self._sketches.items()},
            reservoirs=(
                {col: reservoir for col, (__, reservoir) in self._reservoirs.items()}
                if self._reservoirs
                else None
            ),
        )

    def absorb_partial(self, partial: CollectorPartial) -> None:
        """Fold one morsel's partial state into this collector.

        Counts and min/max fold associatively; distinct sketches merge
        losslessly (bitmap OR / exact-set union), so absorbing partials in
        *any* order yields the state a serial collector would have reached.
        Reservoirs (merge-mode statistics only) merge with a dedicated RNG,
        so as long as partials arrive in morsel order — which the parallel
        executor guarantees regardless of worker scheduling — the merged
        sample is deterministic.
        """
        self.row_count += partial.row_count
        minmax = self._minmax
        for name, (lo, hi) in partial.minmax.items():
            entry = minmax.get(name)
            if entry is None:
                minmax[name] = [lo, hi]
            else:
                if lo < entry[0]:
                    entry[0] = lo
                if hi > entry[1]:
                    entry[1] = hi
        for cols, sketch in partial.sketches.items():
            self._sketches[cols][1].merge(sketch)
        if partial.reservoirs:
            if self._merge_rng is None:
                self._merge_rng = random.Random(
                    _mix64(self.config.seed ^ _MERGE_RNG_SALT)
                )
            for col, reservoir in partial.reservoirs.items():
                self._reservoirs[col][1].merge(reservoir, rng=self._merge_rng)

    def replay_reservoirs(self, rows: Sequence[Row]) -> None:
        """Offer pipeline output rows to the reservoirs only (exact mode).

        Each reservoir owns an independent RNG, and its sampling stream
        consumes one draw per offered value — so feeding the rows in morsel
        order reproduces the serial collector's samples bit-for-bit while
        counts/min-max/sketches arrive pre-merged from the workers.
        """
        if not rows:
            return
        for position, reservoir in self._reservoirs.values():
            reservoir.add_batch(list(map(itemgetter(position), rows)))

    def replay_reservoir_values(self, values_by_column: dict[str, list]) -> None:
        """Offer pre-extracted column values to the reservoirs (exact mode).

        The probe-side and pre-aggregating parallel pipelines do not ship
        the collector's input rows (they ship joined rows or aggregate
        partials), so workers extract each reservoir column's values and
        ship those instead.  Each reservoir's sampling stream depends only
        on its own column's value sequence, so replaying per-morsel value
        runs in morsel order is bit-identical to the serial row stream.
        """
        for column, values in values_by_column.items():
            if values:
                self._reservoirs[column][1].add_batch(values)

    def finalize(self) -> ObservedStatistics:
        """Turn the accumulated state into observed statistics."""
        histograms: dict[str, Histogram] = {}
        for column, (__, reservoir) in self._reservoirs.items():
            if reservoir.seen == 0:
                continue
            histograms[column] = from_sample(
                [float(v) for v in reservoir.sample],
                population_count=reservoir.seen,
                kind=HistogramKind.MAXDIFF,
                num_buckets=self.config.runtime_histogram_buckets,
            )
        distincts = {
            cols: max(1.0, min(sketch.estimate(), float(self.row_count)))
            for cols, (__, sketch) in self._sketches.items()
            if self.row_count > 0
        }
        minmax = {
            name: (float(entry[0]), float(entry[1]))
            for name, entry in self._minmax.items()
            if isinstance(entry[0], (int, float))
        }
        return ObservedStatistics(
            node_id=self.node.node_id,
            row_count=self.row_count,
            row_bytes=float(self.schema.row_bytes),
            minmax=minmax,
            histograms=histograms,
            distincts=distincts,
        )
