"""Loser-tree merge of per-worker sorted runs, with morsel-order ties.

The parallel sort (``EngineConfig.parallel_sort``) has each partition
worker sort its own morsel's pipeline output with exactly the serial
multi-pass stable sort, then ships the sorted *run* to the parent.  The
parent merges the runs with the k-way tournament tree below.

Why the merged output is byte-identical to the serial sort
----------------------------------------------------------

The serial sort applies one stable ``list.sort`` per key in reverse
significance order, which is equivalent to ordering rows by the composite
comparator ``(key_1 dir_1, key_2 dir_2, ..., original stream position)``
— stability means every pass preserves the previous pass's order among
equals, so the original position is the final tie-break.

Each worker applies the *same* multi-pass sort to its run, so within a run
rows are ordered by ``(keys..., position within the run)``.  Runs are the
morsels of a range-affine assignment: concatenated in morsel order they
*are* the serial stream, so a row's original stream position decomposes
lexicographically into ``(run index, position within the run)``.  The
loser tree compares heads by the composite key comparator and breaks full
ties by **run index** (rows within one run never reorder — a run is
consumed front to back), which therefore reproduces the serial order
``(keys..., original position)`` exactly, duplicate keys included.

NULL (``None``) key values raise ``TypeError`` on comparison against
non-NULL values — the same error, from the same comparison, the serial
``list.sort`` would raise; callers needing NULL-tolerant merges pass a
``before`` comparator that totalises them (see the tests).
"""

from __future__ import annotations

from typing import Callable, Sequence

#: Sentinel head for an exhausted run: loses every match.
_EXHAUSTED = object()


def row_comparator(
    keys: Sequence[tuple[int, bool]],
) -> Callable[[tuple, tuple], bool]:
    """``before(a, b)`` — strict ``a`` precedes ``b`` under the sort keys.

    ``keys`` are ``(row position, ascending)`` pairs in significance order
    (most significant first — note the serial sort *applies* them in the
    reverse order; the comparator view and the multi-pass view coincide).
    Returns False on full ties: tie-breaking is the tree's job.
    """

    def before(a: tuple, b: tuple) -> bool:
        for position, ascending in keys:
            av = a[position]
            bv = b[position]
            if av < bv:
                return ascending
            if bv < av:
                return not ascending
        return False

    return before


class LoserTree:
    """K-way tournament merge over sorted runs.

    Internal nodes remember the *loser* of the match played there and the
    overall winner sits at the root, so replacing the winner's head replays
    exactly one leaf-to-root path (``O(log k)`` comparisons per row — the
    property that makes the classical structure preferable to rescanning
    all heads).  ``before`` compares two rows by sort keys only; ties fall
    through to the run index, which is morsel order.
    """

    __slots__ = ("_runs", "_pos", "_heads", "_tree", "_k", "_before")

    def __init__(
        self,
        runs: Sequence[Sequence],
        before: Callable[[object, object], bool],
    ) -> None:
        k = len(runs)
        if k == 0:
            raise ValueError("LoserTree needs at least one run")
        self._runs = runs
        self._before = before
        self._k = k
        self._pos = [1] * k
        self._heads = [run[0] if run else _EXHAUSTED for run in runs]
        # Complete binary tournament: internal nodes 1..k-1 hold losers,
        # node children are (2n, 2n+1) and node j >= k is leaf j - k;
        # slot 0 holds the overall winner's leaf index.
        self._tree = [0] * k
        if k > 1:
            self._tree[0] = self._play(1)

    def _play(self, node: int) -> int:
        """Build one subtree's matches; returns the winning leaf index."""
        if node >= self._k:
            return node - self._k
        left = self._play(2 * node)
        right = self._play(2 * node + 1)
        if self._beats(left, right):
            self._tree[node] = right
            return left
        self._tree[node] = left
        return right

    def _beats(self, i: int, j: int) -> bool:
        """Leaf ``i`` wins against leaf ``j`` (precedes it in the merge)."""
        a = self._heads[i]
        b = self._heads[j]
        if a is _EXHAUSTED:
            return False
        if b is _EXHAUSTED:
            return True
        if self._before(a, b):
            return True
        if self._before(b, a):
            return False
        return i < j  # full key tie: earlier morsel first (stability)

    def pop(self):
        """The next row of the merged stream, or ``_EXHAUSTED`` when done."""
        winner = self._tree[0]
        item = self._heads[winner]
        if item is _EXHAUSTED:
            return _EXHAUSTED
        run = self._runs[winner]
        pos = self._pos[winner]
        if pos < len(run):
            self._heads[winner] = run[pos]
            self._pos[winner] = pos + 1
        else:
            self._heads[winner] = _EXHAUSTED
        # Replay the winner's leaf-to-root path against the stored losers.
        current = winner
        node = (winner + self._k) >> 1
        while node >= 1:
            other = self._tree[node]
            if self._beats(other, current):
                self._tree[node] = current
                current = other
            node >>= 1
        self._tree[0] = current
        return item


def merge_runs(
    runs: Sequence[Sequence],
    before: Callable[[object, object], bool],
) -> list:
    """Merge sorted ``runs`` (in morsel order) into one sorted list."""
    if not runs:
        return []
    if len(runs) == 1:
        return list(runs[0])
    tree = LoserTree(runs, before)
    merged: list = []
    append = merged.append
    total = sum(len(run) for run in runs)
    for _ in range(total):
        append(tree.pop())
    return merged
