"""Logical and physical query plan representations."""

from .logical import (
    AggFunc,
    AggregateExpr,
    AndPredicate,
    ArithExpr,
    BaseRelation,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    FuncExpr,
    InPredicate,
    LogicalQuery,
    NegExpr,
    NotPredicate,
    OrPredicate,
    OrderItem,
    OutputColumn,
    Predicate,
    ScalarExpr,
    output_schema,
)
from .physical import (
    BlockNLJoinNode,
    DistinctNode,
    CollectorSpec,
    Estimates,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    StatsCollectorNode,
)
from .printer import collector_nodes, explain

__all__ = [
    "AggFunc", "AggregateExpr", "AndPredicate", "ArithExpr", "BaseRelation",
    "BlockNLJoinNode", "CollectorSpec", "ColumnExpr", "CompareOp", "Comparison",
    "ConstExpr", "DistinctNode", "Estimates", "FilterNode", "FuncExpr", "HashAggregateNode",
    "HashJoinNode", "InPredicate", "IndexNLJoinNode", "IndexScanNode",
    "LimitNode", "LogicalQuery", "NegExpr", "NotPredicate", "OrPredicate",
    "OrderItem", "OutputColumn", "PlanNode", "Predicate", "ProjectNode",
    "ScalarExpr", "SeqScanNode", "SortNode", "StatsCollectorNode",
    "collector_nodes", "explain", "output_schema",
]
