"""EXPLAIN-style plan rendering."""

from __future__ import annotations

from .physical import PlanNode, StatsCollectorNode


def explain(plan: PlanNode, show_estimates: bool = True) -> str:
    """Render a plan tree as an indented multi-line string."""
    lines: list[str] = []
    _render(plan, 0, lines, show_estimates)
    return "\n".join(lines)


def _render(node: PlanNode, depth: int, lines: list[str], show_estimates: bool) -> None:
    indent = "  " * depth
    detail = node.detail()
    head = f"{indent}{node.label}" + (f" [{detail}]" if detail else "")
    if show_estimates:
        est = node.est
        head += f"  (rows={est.rows:.0f}, cost={est.total_cost:.1f}"
        if est.max_memory_pages:
            head += f", mem={est.min_memory_pages}..{est.max_memory_pages}p"
        head += ")"
    lines.append(head)
    for child in node.children:
        _render(child, depth + 1, lines, show_estimates)


def collector_nodes(plan: PlanNode) -> list[StatsCollectorNode]:
    """All statistics collectors in a plan, in pre-order."""
    return [n for n in plan.walk() if isinstance(n, StatsCollectorNode)]


def explain_with_attribution(plan: PlanNode) -> str:
    """Like :func:`explain`, plus a SCIA attribution line under each
    statistics collector: the inaccuracy potential of the estimate it
    checks and which candidate statistics the budget kept or dropped."""
    lines: list[str] = []

    def render(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        detail = node.detail()
        head = f"{indent}{node.label}" + (f" [{detail}]" if detail else "")
        est = node.est
        head += f"  (rows={est.rows:.0f}, cost={est.total_cost:.1f})"
        lines.append(head)
        if isinstance(node, StatsCollectorNode):
            potential = getattr(node.scia_potential, "name", None)
            parts = []
            if potential is not None:
                parts.append(f"potential={potential.lower()}")
            if node.scia_kept:
                parts.append(f"kept: {', '.join(node.scia_kept)}")
            if node.scia_dropped:
                parts.append(f"dropped: {', '.join(node.scia_dropped)}")
            if parts:
                lines.append(f"{indent}  scia: {'; '.join(parts)}")
        for child in node.children:
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)
