"""EXPLAIN-style plan rendering."""

from __future__ import annotations

from .physical import PlanNode, StatsCollectorNode


def explain(plan: PlanNode, show_estimates: bool = True) -> str:
    """Render a plan tree as an indented multi-line string."""
    lines: list[str] = []
    _render(plan, 0, lines, show_estimates)
    return "\n".join(lines)


def _render(node: PlanNode, depth: int, lines: list[str], show_estimates: bool) -> None:
    indent = "  " * depth
    detail = node.detail()
    head = f"{indent}{node.label}" + (f" [{detail}]" if detail else "")
    if show_estimates:
        est = node.est
        head += f"  (rows={est.rows:.0f}, cost={est.total_cost:.1f}"
        if est.max_memory_pages:
            head += f", mem={est.min_memory_pages}..{est.max_memory_pages}p"
        head += ")"
    lines.append(head)
    for child in node.children:
        _render(child, depth + 1, lines, show_estimates)


def collector_nodes(plan: PlanNode) -> list[StatsCollectorNode]:
    """All statistics collectors in a plan, in pre-order."""
    return [n for n in plan.walk() if isinstance(n, StatsCollectorNode)]
