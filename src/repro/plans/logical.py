"""The bound (logical) query model.

After parsing and binding, a query is a :class:`LogicalQuery`: a set of base
relations, a conjunctive list of predicates, output expressions, and optional
group-by / order-by / limit clauses.  This is the representation the
optimizer enumerates over, the estimator estimates over, and — crucially for
the paper's plan-modification step — the representation from which the
*remainder* of a partially executed query is rebuilt over a temporary table.

All column references are qualified strings (``alias.column``).  Scalar and
boolean expressions compile to plain Python closures against a
:class:`~repro.storage.schema.Schema`, which is how the executor's filter,
projection and aggregation operators evaluate them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..errors import BindError
from ..storage.schema import Column, DataType, Schema
from ..storage.table import Row


class CompareOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def python(self) -> Callable[[object, object], bool]:
        """The Python comparison implementing this operator."""
        return _COMPARE_FUNCS[self]

    @property
    def flipped(self) -> "CompareOp":
        """The operator with operand sides swapped (a < b  <=>  b > a)."""
        return _FLIPPED[self]

    @property
    def is_equality(self) -> bool:
        """Whether this is the ``=`` operator."""
        return self is CompareOp.EQ


_COMPARE_FUNCS: dict[CompareOp, Callable[[object, object], bool]] = {
    CompareOp.EQ: lambda a, b: a == b,
    CompareOp.NE: lambda a, b: a != b,
    CompareOp.LT: lambda a, b: a < b,
    CompareOp.LE: lambda a, b: a <= b,
    CompareOp.GT: lambda a, b: a > b,
    CompareOp.GE: lambda a, b: a >= b,
}

_FLIPPED = {
    CompareOp.EQ: CompareOp.EQ,
    CompareOp.NE: CompareOp.NE,
    CompareOp.LT: CompareOp.GT,
    CompareOp.LE: CompareOp.GE,
    CompareOp.GT: CompareOp.LT,
    CompareOp.GE: CompareOp.LE,
}


def qualifier_of(qualified_name: str) -> str:
    """The relation qualifier of ``alias.column`` (empty when unqualified)."""
    if "." in qualified_name:
        return qualified_name.rsplit(".", 1)[0]
    return ""


# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------


class ScalarExpr:
    """Base class for bound scalar expressions."""

    def columns(self) -> frozenset[str]:
        """Qualified column names referenced by this expression."""
        raise NotImplementedError

    def compile(self, schema: Schema) -> Callable[[Row], object]:
        """Compile to a closure evaluating the expression over a row."""
        raise NotImplementedError

    def contains_function(self) -> bool:
        """Whether a user-defined function call appears anywhere inside."""
        return False

    def sql(self) -> str:
        """Render back to SQL text (used by the remainder-query deparser)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnExpr(ScalarExpr):
    """A reference to a qualified column."""

    name: str

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def compile(self, schema: Schema) -> Callable[[Row], object]:
        position = schema.index_of(self.name)
        return lambda row: row[position]

    def sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstExpr(ScalarExpr):
    """A literal constant (int, float or string).

    ``param`` records the host-variable name (``:name``) the value was
    substituted from, when there was one.  Prepared statements use it to
    *re-plug* fresh parameter values into a cached plan, and the plan cache
    uses it to render a value-independent cache key for parameterised
    queries; it does not participate in equality.
    """

    value: object
    param: str | None = field(default=None, compare=False)

    def columns(self) -> frozenset[str]:
        return frozenset()

    def compile(self, schema: Schema) -> Callable[[Row], object]:
        value = self.value
        return lambda row: value

    def sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class ArithExpr(ScalarExpr):
    """A binary arithmetic expression (``+ - * /``)."""

    op: str
    left: ScalarExpr
    right: ScalarExpr

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> Callable[[Row], object]:
        lf = self.left.compile(schema)
        rf = self.right.compile(schema)
        op = self.op
        if op == "+":
            return lambda row: lf(row) + rf(row)
        if op == "-":
            return lambda row: lf(row) - rf(row)
        if op == "*":
            return lambda row: lf(row) * rf(row)
        if op == "/":
            return lambda row: lf(row) / rf(row)
        raise BindError(f"unknown arithmetic operator {op!r}")

    def contains_function(self) -> bool:
        return self.left.contains_function() or self.right.contains_function()

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class NegExpr(ScalarExpr):
    """Unary numeric negation."""

    child: ScalarExpr

    def columns(self) -> frozenset[str]:
        return self.child.columns()

    def compile(self, schema: Schema) -> Callable[[Row], object]:
        cf = self.child.compile(schema)
        return lambda row: -cf(row)

    def contains_function(self) -> bool:
        return self.child.contains_function()

    def sql(self) -> str:
        return f"(-{self.child.sql()})"


@dataclass(frozen=True)
class FuncExpr(ScalarExpr):
    """A call to a registered scalar (user-defined) function.

    The optimizer cannot estimate selectivities through these — exactly the
    object-relational error source the paper motivates with — so any
    predicate containing one is treated as unknown-selectivity and gets a
    *high* inaccuracy potential.
    """

    name: str
    fn: Callable = field(compare=False, hash=False)
    args: tuple[ScalarExpr, ...] = ()

    def columns(self) -> frozenset[str]:
        cols: frozenset[str] = frozenset()
        for arg in self.args:
            cols |= arg.columns()
        return cols

    def compile(self, schema: Schema) -> Callable[[Row], object]:
        arg_fns = [a.compile(schema) for a in self.args]
        fn = self.fn
        return lambda row: fn(*(af(row) for af in arg_fns))

    def contains_function(self) -> bool:
        return True

    def sql(self) -> str:
        args = ", ".join(a.sql() for a in self.args)
        return f"{self.name}({args})"


# ----------------------------------------------------------------------
# Aggregates and output columns
# ----------------------------------------------------------------------


class AggFunc(enum.Enum):
    """Supported aggregate functions."""

    SUM = "sum"
    AVG = "avg"
    COUNT = "count"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggregateExpr:
    """An aggregate call; ``arg`` is None only for ``COUNT(*)``."""

    func: AggFunc
    arg: ScalarExpr | None = None

    def columns(self) -> frozenset[str]:
        """Qualified columns referenced by the aggregate's argument."""
        return self.arg.columns() if self.arg is not None else frozenset()

    def sql(self) -> str:
        """Render back to SQL."""
        inner = self.arg.sql() if self.arg is not None else "*"
        return f"{self.func.value}({inner})"


@dataclass(frozen=True)
class OutputColumn:
    """One item of the SELECT list: a name plus a scalar or aggregate expr."""

    name: str
    expr: ScalarExpr | AggregateExpr

    @property
    def is_aggregate(self) -> bool:
        """Whether this output is an aggregate."""
        return isinstance(self.expr, AggregateExpr)

    def columns(self) -> frozenset[str]:
        """Qualified columns referenced."""
        return self.expr.columns()

    def sql(self) -> str:
        """Render as ``expr AS name``."""
        return f"{self.expr.sql()} AS {self.name}"


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------


class Predicate:
    """Base class for bound boolean predicates (one conjunct each)."""

    def columns(self) -> frozenset[str]:
        """Qualified columns referenced."""
        raise NotImplementedError

    def qualifiers(self) -> frozenset[str]:
        """Relation aliases referenced by this predicate."""
        return frozenset(qualifier_of(c) for c in self.columns())

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        """Compile to a row -> bool closure."""
        raise NotImplementedError

    def contains_function(self) -> bool:
        """Whether a UDF call appears inside (unknown selectivity)."""
        return False

    @property
    def is_parameter_based(self) -> bool:
        """Whether the predicate compares against a host-language parameter."""
        return False

    def sql(self) -> str:
        """Render back to SQL text."""
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left op right`` between scalar expressions.

    ``param_based`` marks comparisons whose constant came from a host
    variable (``:name``): the value is known to the *executor* but treated as
    unknown by the *estimator*, mirroring compile-time optimization of
    parameterised queries (a paper-cited error source).
    """

    op: CompareOp
    left: ScalarExpr
    right: ScalarExpr
    param_based: bool = False

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        lf = self.left.compile(schema)
        rf = self.right.compile(schema)
        cmp = self.op.python
        return lambda row: cmp(lf(row), rf(row))

    def contains_function(self) -> bool:
        return self.left.contains_function() or self.right.contains_function()

    @property
    def is_parameter_based(self) -> bool:
        return self.param_based

    @property
    def is_column_to_column(self) -> bool:
        """True when both sides are bare column references."""
        return isinstance(self.left, ColumnExpr) and isinstance(self.right, ColumnExpr)

    @property
    def is_equi_join(self) -> bool:
        """True for ``a.x = b.y`` with the two sides on different relations."""
        if not (self.op.is_equality and self.is_column_to_column):
            return False
        return len(self.qualifiers()) == 2

    def column_and_constant(self) -> tuple[str, object] | None:
        """``(column, value)`` when this compares one column to a constant."""
        if isinstance(self.left, ColumnExpr) and isinstance(self.right, ConstExpr):
            return (self.left.name, self.right.value)
        if isinstance(self.right, ColumnExpr) and isinstance(self.left, ConstExpr):
            return (self.right.name, self.left.value)
        return None

    def normalized(self) -> "Comparison":
        """Return an equivalent comparison with any constant on the right."""
        if isinstance(self.left, ConstExpr) and isinstance(self.right, ColumnExpr):
            return Comparison(self.op.flipped, self.right, self.left, self.param_based)
        return self

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op.value} {self.right.sql()}"


@dataclass(frozen=True)
class InPredicate(Predicate):
    """``expr IN (v1, v2, ...)`` against constants."""

    expr: ScalarExpr
    values: tuple

    def columns(self) -> frozenset[str]:
        return self.expr.columns()

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        ef = self.expr.compile(schema)
        values = set(self.values)
        return lambda row: ef(row) in values

    def contains_function(self) -> bool:
        return self.expr.contains_function()

    def sql(self) -> str:
        rendered = ", ".join(ConstExpr(v).sql() for v in self.values)
        return f"{self.expr.sql()} IN ({rendered})"


@dataclass(frozen=True)
class OrPredicate(Predicate):
    """A disjunction of sub-predicates (kept as one conjunct)."""

    children: tuple[Predicate, ...]

    def columns(self) -> frozenset[str]:
        cols: frozenset[str] = frozenset()
        for child in self.children:
            cols |= child.columns()
        return cols

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        fns = [c.compile(schema) for c in self.children]
        return lambda row: any(fn(row) for fn in fns)

    def contains_function(self) -> bool:
        return any(c.contains_function() for c in self.children)

    @property
    def is_parameter_based(self) -> bool:
        return any(c.is_parameter_based for c in self.children)

    def sql(self) -> str:
        return "(" + " OR ".join(c.sql() for c in self.children) + ")"


@dataclass(frozen=True)
class AndPredicate(Predicate):
    """A nested conjunction (only appears *inside* OR/NOT; top-level ANDs are
    flattened into separate conjuncts by the binder)."""

    children: tuple[Predicate, ...]

    def columns(self) -> frozenset[str]:
        cols: frozenset[str] = frozenset()
        for child in self.children:
            cols |= child.columns()
        return cols

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        fns = [c.compile(schema) for c in self.children]
        return lambda row: all(fn(row) for fn in fns)

    def contains_function(self) -> bool:
        return any(c.contains_function() for c in self.children)

    @property
    def is_parameter_based(self) -> bool:
        return any(c.is_parameter_based for c in self.children)

    def sql(self) -> str:
        return "(" + " AND ".join(c.sql() for c in self.children) + ")"


@dataclass(frozen=True)
class NotPredicate(Predicate):
    """Negation of a sub-predicate."""

    child: Predicate

    def columns(self) -> frozenset[str]:
        return self.child.columns()

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        fn = self.child.compile(schema)
        return lambda row: not fn(row)

    def contains_function(self) -> bool:
        return self.child.contains_function()

    @property
    def is_parameter_based(self) -> bool:
        return self.child.is_parameter_based

    def sql(self) -> str:
        return f"NOT ({self.child.sql()})"


# ----------------------------------------------------------------------
# The query
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BaseRelation:
    """One FROM-clause entry: a catalog table under an alias."""

    table_name: str
    alias: str

    def sql(self) -> str:
        """Render as ``table alias`` (or just ``table``)."""
        if self.alias.lower() == self.table_name.lower():
            return self.table_name
        return f"{self.table_name} {self.alias}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an output-column name plus direction."""

    name: str
    ascending: bool = True

    def sql(self) -> str:
        """Render back to SQL."""
        return self.name if self.ascending else f"{self.name} DESC"


@dataclass(frozen=True)
class LogicalQuery:
    """A fully bound query, ready for optimization."""

    relations: tuple[BaseRelation, ...]
    predicates: tuple[Predicate, ...]
    output: tuple[OutputColumn, ...]
    group_by: tuple[str, ...] = ()
    #: HAVING conjuncts; their column references name *output* columns.
    having: tuple[Predicate, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    #: SELECT DISTINCT: duplicate output rows are eliminated.
    distinct: bool = False

    @property
    def has_aggregates(self) -> bool:
        """Whether any output column is an aggregate."""
        return any(item.is_aggregate for item in self.output)

    @property
    def join_count(self) -> int:
        """Number of joins (relations minus one) — the paper's complexity measure."""
        return max(0, len(self.relations) - 1)

    def relation_for_alias(self, alias: str) -> BaseRelation:
        """The FROM entry registered under ``alias``."""
        for rel in self.relations:
            if rel.alias == alias:
                return rel
        raise BindError(f"unknown relation alias {alias!r}")

    def selection_predicates(self, alias: str) -> list[Predicate]:
        """Predicates that touch only the given relation."""
        return [p for p in self.predicates if p.qualifiers() == frozenset({alias})]

    def join_predicates(self) -> list[Predicate]:
        """Predicates spanning two or more relations."""
        return [p for p in self.predicates if len(p.qualifiers()) >= 2]

    def sql(self) -> str:
        """Deparse the whole query back to SQL text."""
        from ..sql.deparser import deparse  # local import avoids a cycle

        return deparse(self)


# ----------------------------------------------------------------------
# Host-variable substitution
# ----------------------------------------------------------------------


def substitute_expr(expr: ScalarExpr, values: Mapping[str, object]) -> ScalarExpr:
    """Rebuild ``expr`` with parameter-born constants replaced from ``values``.

    Constants carrying a :attr:`ConstExpr.param` name found in ``values`` get
    the mapped value; everything else is returned unchanged (identity-
    preserved, so callers can detect whether anything was substituted with
    an ``is`` check).
    """
    if isinstance(expr, ConstExpr):
        if expr.param is not None and expr.param in values:
            return ConstExpr(values[expr.param], param=expr.param)
        return expr
    if isinstance(expr, ArithExpr):
        left = substitute_expr(expr.left, values)
        right = substitute_expr(expr.right, values)
        if left is expr.left and right is expr.right:
            return expr
        return ArithExpr(expr.op, left, right)
    if isinstance(expr, NegExpr):
        child = substitute_expr(expr.child, values)
        return expr if child is expr.child else NegExpr(child)
    if isinstance(expr, FuncExpr):
        args = tuple(substitute_expr(a, values) for a in expr.args)
        if all(a is b for a, b in zip(args, expr.args)):
            return expr
        return FuncExpr(name=expr.name, fn=expr.fn, args=args)
    return expr


def substitute_predicate(pred: Predicate, values: Mapping[str, object]) -> Predicate:
    """Rebuild ``pred`` with parameter-born constants replaced from ``values``."""
    if isinstance(pred, Comparison):
        left = substitute_expr(pred.left, values)
        right = substitute_expr(pred.right, values)
        if left is pred.left and right is pred.right:
            return pred
        return Comparison(pred.op, left, right, pred.param_based)
    if isinstance(pred, InPredicate):
        expr = substitute_expr(pred.expr, values)
        return pred if expr is pred.expr else InPredicate(expr, pred.values)
    if isinstance(pred, (AndPredicate, OrPredicate)):
        children = tuple(substitute_predicate(c, values) for c in pred.children)
        if all(a is b for a, b in zip(children, pred.children)):
            return pred
        return type(pred)(children)
    if isinstance(pred, NotPredicate):
        child = substitute_predicate(pred.child, values)
        return pred if child is pred.child else NotPredicate(child)
    return pred


def substitute_output(
    item: OutputColumn, values: Mapping[str, object]
) -> OutputColumn:
    """Rebuild an output column with parameter-born constants replaced."""
    if isinstance(item.expr, AggregateExpr):
        if item.expr.arg is None:
            return item
        arg = substitute_expr(item.expr.arg, values)
        if arg is item.expr.arg:
            return item
        return OutputColumn(item.name, AggregateExpr(item.expr.func, arg))
    expr = substitute_expr(item.expr, values)
    return item if expr is item.expr else OutputColumn(item.name, expr)


def substitute_query(query: LogicalQuery, values: Mapping[str, object]) -> LogicalQuery:
    """Rebuild a bound query with parameter-born constants replaced."""
    predicates = tuple(substitute_predicate(p, values) for p in query.predicates)
    having = tuple(substitute_predicate(p, values) for p in query.having)
    output = tuple(substitute_output(i, values) for i in query.output)
    if (
        all(a is b for a, b in zip(predicates, query.predicates))
        and all(a is b for a, b in zip(having, query.having))
        and all(a is b for a, b in zip(output, query.output))
    ):
        return query
    return LogicalQuery(
        relations=query.relations,
        predicates=predicates,
        output=output,
        group_by=query.group_by,
        having=having,
        order_by=query.order_by,
        limit=query.limit,
        distinct=query.distinct,
    )


def parameter_names(query: LogicalQuery) -> frozenset[str]:
    """All host-variable names whose values are embedded in ``query``."""
    names: set[str] = set()

    def visit_expr(expr: ScalarExpr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ConstExpr):
            if expr.param is not None:
                names.add(expr.param)
        elif isinstance(expr, ArithExpr):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, NegExpr):
            visit_expr(expr.child)
        elif isinstance(expr, FuncExpr):
            for arg in expr.args:
                visit_expr(arg)

    def visit_pred(pred: Predicate) -> None:
        if isinstance(pred, Comparison):
            visit_expr(pred.left)
            visit_expr(pred.right)
        elif isinstance(pred, InPredicate):
            visit_expr(pred.expr)
        elif isinstance(pred, (AndPredicate, OrPredicate)):
            for child in pred.children:
                visit_pred(child)
        elif isinstance(pred, NotPredicate):
            visit_pred(pred.child)

    for pred in query.predicates:
        visit_pred(pred)
    for pred in query.having:
        visit_pred(pred)
    for item in query.output:
        if isinstance(item.expr, AggregateExpr):
            visit_expr(item.expr.arg)
        else:
            visit_expr(item.expr)
    return frozenset(names)


def conjuncts_referencing(
    predicates: Iterable[Predicate], aliases: Sequence[str]
) -> list[Predicate]:
    """Predicates whose qualifiers are all within ``aliases``."""
    allowed = frozenset(aliases)
    return [p for p in predicates if p.qualifiers() <= allowed]


def infer_dtype(expr: ScalarExpr | AggregateExpr, schema: Schema) -> DataType:
    """Infer the result type of an expression against ``schema``."""
    if isinstance(expr, AggregateExpr):
        if expr.func is AggFunc.COUNT:
            return DataType.INTEGER
        if expr.func in (AggFunc.SUM, AggFunc.AVG):
            return DataType.FLOAT
        return infer_dtype(expr.arg, schema) if expr.arg is not None else DataType.INTEGER
    if isinstance(expr, ColumnExpr):
        return schema.column(expr.name).dtype
    if isinstance(expr, ConstExpr):
        if isinstance(expr.value, bool):
            return DataType.INTEGER
        if isinstance(expr.value, int):
            return DataType.INTEGER
        if isinstance(expr.value, float):
            return DataType.FLOAT
        return DataType.STRING
    if isinstance(expr, (ArithExpr, NegExpr)):
        return DataType.FLOAT
    if isinstance(expr, FuncExpr):
        return DataType.FLOAT
    raise BindError(f"cannot infer type of {expr!r}")


def output_schema(
    output: Sequence[OutputColumn], input_schema: Schema
) -> Schema:
    """Schema of the rows produced by a projection/aggregation."""
    columns = []
    for item in output:
        dtype = infer_dtype(item.expr, input_schema)
        columns.append(Column(item.name, dtype))
    return Schema(columns)
