"""Expression and predicate rewriting (column renames).

Used by the remainder-query builder: when a subquery's output is
materialised into a temporary table, every reference to a column produced by
that subtree must be renamed to the temp table's column
(``alias.col`` -> ``__temp_N.alias__col``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from ..errors import ReproError
from .logical import (
    AggregateExpr,
    AndPredicate,
    ArithExpr,
    ColumnExpr,
    Comparison,
    ConstExpr,
    FuncExpr,
    InPredicate,
    NegExpr,
    NotPredicate,
    OrPredicate,
    OutputColumn,
    Predicate,
    ScalarExpr,
)


def rename_scalar(expr: ScalarExpr, mapping: Mapping[str, str]) -> ScalarExpr:
    """Return ``expr`` with column references renamed per ``mapping``."""
    if isinstance(expr, ColumnExpr):
        new_name = mapping.get(expr.name)
        return ColumnExpr(new_name) if new_name is not None else expr
    if isinstance(expr, ConstExpr):
        return expr
    if isinstance(expr, ArithExpr):
        return ArithExpr(
            expr.op,
            rename_scalar(expr.left, mapping),
            rename_scalar(expr.right, mapping),
        )
    if isinstance(expr, NegExpr):
        return NegExpr(rename_scalar(expr.child, mapping))
    if isinstance(expr, FuncExpr):
        return FuncExpr(
            name=expr.name,
            fn=expr.fn,
            args=tuple(rename_scalar(a, mapping) for a in expr.args),
        )
    raise ReproError(f"cannot rename columns in {type(expr).__name__}")


def rename_aggregate(expr: AggregateExpr, mapping: Mapping[str, str]) -> AggregateExpr:
    """Rename column references inside an aggregate call."""
    if expr.arg is None:
        return expr
    return AggregateExpr(func=expr.func, arg=rename_scalar(expr.arg, mapping))


def rename_output(item: OutputColumn, mapping: Mapping[str, str]) -> OutputColumn:
    """Rename column references inside one SELECT-list item."""
    if isinstance(item.expr, AggregateExpr):
        return replace(item, expr=rename_aggregate(item.expr, mapping))
    return replace(item, expr=rename_scalar(item.expr, mapping))


def rename_predicate(pred: Predicate, mapping: Mapping[str, str]) -> Predicate:
    """Return ``pred`` with column references renamed per ``mapping``."""
    if isinstance(pred, Comparison):
        return Comparison(
            pred.op,
            rename_scalar(pred.left, mapping),
            rename_scalar(pred.right, mapping),
            param_based=pred.param_based,
        )
    if isinstance(pred, InPredicate):
        return InPredicate(rename_scalar(pred.expr, mapping), pred.values)
    if isinstance(pred, OrPredicate):
        return OrPredicate(tuple(rename_predicate(c, mapping) for c in pred.children))
    if isinstance(pred, AndPredicate):
        return AndPredicate(tuple(rename_predicate(c, mapping) for c in pred.children))
    if isinstance(pred, NotPredicate):
        return NotPredicate(rename_predicate(pred.child, mapping))
    raise ReproError(f"cannot rename columns in predicate {type(pred).__name__}")
