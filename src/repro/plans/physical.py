"""Annotated physical query plans.

The optimizer produces a tree of :class:`PlanNode` objects.  Following the
paper's central requirement, every node carries an :class:`Estimates`
annotation — the optimizer's estimated cardinality, size, per-operator and
cumulative cost, memory demands, and the full statistical profile
(:class:`~repro.stats.estimator.RelProfile`) of its output.  The Dynamic
Re-Optimization machinery compares these against observed statistics and
re-derives them when better information arrives.

Memory *grants* are intentionally not stored on the nodes: the Memory
Manager produces a separate ``{node_id: pages}`` map, so dynamic
re-allocation never mutates the plan.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, TypeVar

from ..stats.estimator import RelProfile
from ..storage.schema import Schema
from .logical import OrderItem, OutputColumn, Predicate

_node_ids = itertools.count(1)

_C = TypeVar("_C")


def fresh_node_id() -> int:
    """Allocate a new globally unique plan-node id."""
    return next(_node_ids)


@dataclass
class Estimates:
    """Optimizer annotations attached to one plan node."""

    rows: float = 0.0
    row_bytes: float = 0.0
    pages: float = 0.0
    #: This operator's own estimated cost (cost units).
    op_cost: float = 0.0
    #: Cumulative estimated cost of the subtree rooted here.
    total_cost: float = 0.0
    #: Statistical profile of the node's output (for re-estimation).
    profile: RelProfile | None = None
    #: Memory demands, in pages (zero for non-memory-consuming operators).
    min_memory_pages: int = 0
    max_memory_pages: int = 0

    def copy(self) -> "Estimates":
        """Shallow copy (profiles are immutable)."""
        return Estimates(
            rows=self.rows,
            row_bytes=self.row_bytes,
            pages=self.pages,
            op_cost=self.op_cost,
            total_cost=self.total_cost,
            profile=self.profile,
            min_memory_pages=self.min_memory_pages,
            max_memory_pages=self.max_memory_pages,
        )


class PlanNode:
    """Base class for physical plan operators."""

    def __init__(self, schema: Schema, children: Sequence["PlanNode"]) -> None:
        self.node_id = next(_node_ids)
        self.schema = schema
        self.children: tuple[PlanNode, ...] = tuple(children)
        self.est = Estimates()
        #: Compiled predicate/projection/key closures, keyed by purpose.
        #: Schemas are fixed for a node's lifetime, so closures compiled for
        #: one execution are valid for every later one (and are shared by the
        #: row and batch execution paths — e.g. a hash join's key extractors
        #: across its build and probe phases).
        self._compiled: dict[str, object] = {}

    def compiled(self, key: str, factory: Callable[[], _C]) -> _C:
        """Return the closure cached under ``key``, compiling it on first use."""
        try:
            return self._compiled[key]  # type: ignore[return-value]
        except KeyError:
            value = self._compiled[key] = factory()
            return value

    @property
    def label(self) -> str:
        """Short operator label for EXPLAIN output."""
        return type(self).__name__.removesuffix("Node")

    def detail(self) -> str:
        """One-line operator-specific detail for EXPLAIN output."""
        return ""

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, node_id: int) -> "PlanNode | None":
        """Locate a node by id within this subtree."""
        for node in self.walk():
            if node.node_id == node_id:
                return node
        return None

    @property
    def is_blocking(self) -> bool:
        """Whether this operator consumes (some) input fully before producing."""
        return False

    @property
    def base_aliases(self) -> frozenset[str]:
        """Aliases of all base relations feeding this subtree."""
        aliases: frozenset[str] = frozenset()
        for node in self.walk():
            if isinstance(node, (SeqScanNode, IndexScanNode)):
                aliases |= frozenset({node.alias})
            elif isinstance(node, IndexNLJoinNode):
                aliases |= frozenset({node.inner_alias})
        return aliases


class SeqScanNode(PlanNode):
    """Full sequential scan of a base (or temporary) table."""

    def __init__(self, table_name: str, alias: str, schema: Schema) -> None:
        super().__init__(schema, ())
        self.table_name = table_name
        self.alias = alias

    def detail(self) -> str:
        if self.alias != self.table_name:
            return f"{self.table_name} as {self.alias}"
        return self.table_name


class IndexScanNode(PlanNode):
    """Index-driven scan of a base table with a sargable bound.

    ``low``/``high`` give the key range (both set and equal for equality);
    residual predicates are applied by an enclosing FilterNode.
    """

    def __init__(
        self,
        table_name: str,
        alias: str,
        schema: Schema,
        index_column: str,
        low: object | None = None,
        high: object | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        bound_predicates: Sequence[Predicate] = (),
    ) -> None:
        super().__init__(schema, ())
        self.table_name = table_name
        self.alias = alias
        self.index_column = index_column
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        #: The predicates the bound was derived from (for re-estimation).
        self.bound_predicates: tuple[Predicate, ...] = tuple(bound_predicates)

    def detail(self) -> str:
        bounds = []
        if self.low is not None:
            op = ">=" if self.low_inclusive else ">"
            bounds.append(f"{self.index_column} {op} {self.low!r}")
        if self.high is not None:
            op = "<=" if self.high_inclusive else "<"
            bounds.append(f"{self.index_column} {op} {self.high!r}")
        return f"{self.table_name} via {self.index_column} [{' and '.join(bounds)}]"


class FilterNode(PlanNode):
    """Applies a conjunction of predicates to its input."""

    def __init__(self, child: PlanNode, predicates: Sequence[Predicate]) -> None:
        super().__init__(child.schema, (child,))
        self.predicates: tuple[Predicate, ...] = tuple(predicates)

    @property
    def child(self) -> PlanNode:
        """The single input."""
        return self.children[0]

    def detail(self) -> str:
        return " AND ".join(p.sql() for p in self.predicates)


@dataclass(frozen=True)
class CollectorSpec:
    """What one statistics collector gathers.

    Cardinality, average tuple size and min/max are always observed (the
    paper treats their cost as negligible); histograms and distinct counts
    are the budgeted statistics chosen by the SCIA.
    """

    histogram_columns: tuple[str, ...] = ()
    distinct_column_sets: tuple[tuple[str, ...], ...] = ()

    @property
    def statistic_count(self) -> int:
        """Number of budgeted statistics maintained."""
        return len(self.histogram_columns) + len(self.distinct_column_sets)


class StatsCollectorNode(PlanNode):
    """Pass-through operator observing the tuple stream (paper section 2.2)."""

    def __init__(self, child: PlanNode, spec: CollectorSpec) -> None:
        super().__init__(child.schema, (child,))
        self.spec = spec
        # SCIA attribution, filled in by ``insert_collectors``: the
        # inaccuracy potential of the estimate this point checks
        # (an ``InaccuracyPotential``; typed loosely to avoid a plans->core
        # import cycle) and which statistics the budget kept or cut.
        # Immutable values, so clone_plan's shallow copies share them.
        self.scia_potential: object | None = None
        self.scia_kept: tuple[str, ...] = ()
        self.scia_dropped: tuple[str, ...] = ()

    @property
    def child(self) -> PlanNode:
        """The single input."""
        return self.children[0]

    def detail(self) -> str:
        parts = []
        for col in self.spec.histogram_columns:
            parts.append(f"histogram({col})")
        for cols in self.spec.distinct_column_sets:
            parts.append(f"distinct({', '.join(cols)})")
        return ", ".join(parts) if parts else "cardinality only"


class HashJoinNode(PlanNode):
    """Hybrid hash join; the left child is the build side."""

    def __init__(
        self,
        build: PlanNode,
        probe: PlanNode,
        key_pairs: Sequence[tuple[str, str]],
        residual: Sequence[Predicate] = (),
    ) -> None:
        super().__init__(build.schema.concat(probe.schema), (build, probe))
        self.key_pairs: tuple[tuple[str, str], ...] = tuple(key_pairs)
        self.residual: tuple[Predicate, ...] = tuple(residual)

    @property
    def build(self) -> PlanNode:
        """Build-side input (consumed fully first)."""
        return self.children[0]

    @property
    def probe(self) -> PlanNode:
        """Probe-side input (streamed)."""
        return self.children[1]

    @property
    def is_blocking(self) -> bool:
        return True

    def detail(self) -> str:
        keys = " AND ".join(f"{b} = {p}" for b, p in self.key_pairs)
        return keys


class IndexNLJoinNode(PlanNode):
    """Indexed nested-loops join: probe an inner table's index per outer row."""

    def __init__(
        self,
        outer: PlanNode,
        inner_table: str,
        inner_alias: str,
        inner_schema: Schema,
        outer_column: str,
        inner_column: str,
        residual: Sequence[Predicate] = (),
    ) -> None:
        super().__init__(outer.schema.concat(inner_schema), (outer,))
        self.inner_table = inner_table
        self.inner_alias = inner_alias
        self.inner_schema = inner_schema
        self.outer_column = outer_column
        self.inner_column = inner_column
        self.residual: tuple[Predicate, ...] = tuple(residual)

    @property
    def outer(self) -> PlanNode:
        """Outer (streamed) input."""
        return self.children[0]

    def detail(self) -> str:
        return f"{self.outer_column} = {self.inner_alias}.{self.inner_column}"


class BlockNLJoinNode(PlanNode):
    """Block nested-loops join (fallback for non-equi join predicates)."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        predicates: Sequence[Predicate] = (),
    ) -> None:
        super().__init__(outer.schema.concat(inner.schema), (outer, inner))
        self.predicates: tuple[Predicate, ...] = tuple(predicates)

    @property
    def outer(self) -> PlanNode:
        """Outer input."""
        return self.children[0]

    @property
    def inner(self) -> PlanNode:
        """Inner input (scanned once per outer block)."""
        return self.children[1]

    @property
    def is_blocking(self) -> bool:
        return True

    def detail(self) -> str:
        return " AND ".join(p.sql() for p in self.predicates) or "cross"


class ProjectNode(PlanNode):
    """Scalar projection (no aggregates)."""

    def __init__(self, child: PlanNode, output: Sequence[OutputColumn], schema: Schema) -> None:
        super().__init__(schema, (child,))
        self.output: tuple[OutputColumn, ...] = tuple(output)

    @property
    def child(self) -> PlanNode:
        """The single input."""
        return self.children[0]

    def detail(self) -> str:
        return ", ".join(item.name for item in self.output)


class HashAggregateNode(PlanNode):
    """Hash-based grouping and aggregation."""

    def __init__(
        self,
        child: PlanNode,
        group_by: Sequence[str],
        output: Sequence[OutputColumn],
        schema: Schema,
    ) -> None:
        super().__init__(schema, (child,))
        self.group_by: tuple[str, ...] = tuple(group_by)
        self.output: tuple[OutputColumn, ...] = tuple(output)

    @property
    def child(self) -> PlanNode:
        """The single input."""
        return self.children[0]

    @property
    def is_blocking(self) -> bool:
        return True

    def detail(self) -> str:
        if self.group_by:
            return "group by " + ", ".join(self.group_by)
        return "scalar aggregate"


class DistinctNode(PlanNode):
    """Duplicate elimination over the full output row (SELECT DISTINCT)."""

    def __init__(self, child: PlanNode) -> None:
        super().__init__(child.schema, (child,))

    @property
    def child(self) -> PlanNode:
        """The single input."""
        return self.children[0]

    @property
    def is_blocking(self) -> bool:
        return True

    def detail(self) -> str:
        return ", ".join(self.schema.names)


class SortNode(PlanNode):
    """Full sort of the input on output-column keys."""

    def __init__(self, child: PlanNode, keys: Sequence[OrderItem]) -> None:
        super().__init__(child.schema, (child,))
        self.keys: tuple[OrderItem, ...] = tuple(keys)

    @property
    def child(self) -> PlanNode:
        """The single input."""
        return self.children[0]

    @property
    def is_blocking(self) -> bool:
        return True

    def detail(self) -> str:
        return ", ".join(k.sql() for k in self.keys)


class LimitNode(PlanNode):
    """Returns only the first N rows of its input."""

    def __init__(self, child: PlanNode, limit: int) -> None:
        super().__init__(child.schema, (child,))
        self.limit = limit

    @property
    def child(self) -> PlanNode:
        """The single input."""
        return self.children[0]

    def detail(self) -> str:
        return str(self.limit)


def clone_plan(plan: PlanNode, share_compiled: bool = True) -> PlanNode:
    """Deep-copy a plan tree for an independent execution.

    Execution mutates plans in place — the SCIA splices collector nodes into
    ``children``, annotation passes overwrite ``est``, and the improved-
    estimate machinery re-derives annotations mid-query — so a cached plan
    template must never be executed directly.  A clone gives every node a
    fresh identity, its own ``children`` tuple and its own :class:`Estimates`
    while *sharing* the immutable payloads (schemas, predicates, specs) with
    the template.

    With ``share_compiled`` (the default) the clones also share each node's
    compiled-closure cache: compiled filters, key extractors and projectors
    depend only on the node's schema and predicates, which are identical
    across clones, so compilation cost is paid once per cached plan rather
    than once per execution.  Pass ``False`` when a caller is about to
    rewrite a clone's predicates (e.g. parameter plugging).
    """
    new = copy.copy(plan)
    new.node_id = fresh_node_id()
    new.children = tuple(clone_plan(c, share_compiled) for c in plan.children)
    new.est = plan.est.copy()
    if not share_compiled:
        new._compiled = {}
    return new
