"""The public engine facade.

A :class:`Database` owns a catalog and a configuration and exposes the user
workflow: create and load tables, build indexes, ANALYZE, and execute SQL
with Dynamic Re-Optimization in any of the paper's modes.  Each execution
gets a fresh cost clock and buffer pool so experiment measurements are
independent (the paper likewise reports per-query times on a dedicated
cluster, averaged over repeated cold runs).

Typical usage::

    db = Database()
    db.create_table("r", [("id", DataType.INTEGER), ("a", DataType.INTEGER)], key=["id"])
    db.load_rows("r", rows)
    db.analyze()
    result = db.execute("SELECT count(*) FROM r WHERE a < 10", mode=DynamicMode.FULL)
    print(result.profile.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Mapping, Sequence

from ..concurrency import fork_safe_lock
from ..config import EngineConfig
from ..core.modes import DynamicMode
from ..core.parametric import (
    ParametricOptimizer,
    choose_plan,
    has_parameter_predicates,
    mask_parameters,
    plug_parameters,
)
from ..core.reoptimizer import DynamicReoptimizer
from ..core.scia import SciaResult, insert_collectors
from ..errors import CatalogError
from ..executor.dispatcher import Dispatcher
from ..executor.memory import MemoryManager
from ..executor.runtime import RuntimeContext
from ..observe.analyze import ExplainAnalyzeReport, analyze_execution
from ..observe.feedback import FeedbackRepository, plan_signatures
from ..observe.metrics import MetricsRegistry, default_registry
from ..observe.slowlog import emit_slow_query
from ..observe.trace import QueryTracer
from ..optimizer.calibration import OptimizerCalibration
from ..optimizer.cost_model import CostModel
from ..optimizer.optimizer import Optimizer
from ..plans.logical import LogicalQuery
from ..plans.physical import PlanNode, clone_plan
from ..plans.printer import explain as explain_plan
from ..sql.ast import AstSelect
from ..sql.binder import bind
from ..sql.deparser import deparse
from ..sql.parser import parse
from ..stats.estimator import Estimator
from ..stats.histogram import HistogramKind
from ..storage.buffer import BufferPool
from ..storage.catalog import Catalog
from ..storage.disk import CostClock
from ..storage.schema import Column, DataType, Schema
from ..storage.table import Row, Table
from ..storage.temp import TempTableManager
from .plan_cache import CachedPlan, CachedScenarios, PlanCache, parameter_signature
from .prepared import PreparedStatement
from .profile import ExecutionProfile, PhaseBreakdown
from .results import QueryResult

ColumnSpec = Column | tuple[str, DataType]


@dataclass
class PreparedExecution:
    """Everything the execution pipeline needs, ready to run.

    Produced by :meth:`Database._prepare` — the single preparation path
    shared by :meth:`Database.execute`, :meth:`Database.plan`,
    :meth:`Database.explain` and prepared statements, so EXPLAIN output and
    executed plans can never diverge on the same SQL.  ``plan`` is always
    safe to execute directly: it is either freshly optimized or a clone of a
    cached template.
    """

    query: LogicalQuery
    plan: PlanNode
    scia: SciaResult | None
    optimizer: Optimizer
    cache_hit: bool = False
    parametric_plans: int = 0
    parametric_choice: str = ""
    #: Wall-clock seconds per preparation phase (parse/bind/optimize/scia).
    phase_seconds: dict[str, float] = field(default_factory=dict)


class Database:
    """An embedded analytical database with Dynamic Re-Optimization."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        calibration: OptimizerCalibration | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.config.validate()
        self.catalog = Catalog(self.config.page_size)
        self.calibration = calibration or OptimizerCalibration()
        self.estimator = Estimator()
        #: Cross-query counters/gauges/histograms.  Engines share the
        #: process-wide registry unless handed their own (tests that assert
        #: exact counts pass a fresh one).
        self.metrics = metrics if metrics is not None else default_registry()
        self.plan_cache = PlanCache(self.config.plan_cache_size, metrics=self.metrics)
        #: Cross-query cardinality-feedback repository (``None`` when
        #: disabled — every consumer hook guards on that, so the disabled
        #: engine is byte-identical to one built before the repository
        #: existed).
        self.feedback: FeedbackRepository | None = None
        if self.config.feedback_enabled:
            self.feedback = FeedbackRepository(
                path=self.config.feedback_path,
                q_error_threshold=self.config.feedback_q_error_threshold,
                decay=self.config.feedback_decay,
                max_correction=self.config.feedback_max_correction,
                metrics=self.metrics,
            )
        self.estimator.feedback = self.feedback
        self._udfs: dict[str, Callable] = {}
        self._server = None
        self._server_lock = fork_safe_lock(self, "_server_lock")

    # -- DDL / loading ------------------------------------------------------

    @staticmethod
    def _schema_from_columns(columns: Sequence[ColumnSpec] | Schema) -> Schema:
        """Normalize column specs (shared with session temp-table DDL)."""
        if isinstance(columns, Schema):
            return columns
        return Schema(
            c if isinstance(c, Column) else Column(c[0], c[1]) for c in columns
        )

    def create_table(
        self,
        name: str,
        columns: Sequence[ColumnSpec] | Schema,
        key: Sequence[str] = (),
    ) -> Table:
        """Create an empty table."""
        schema = self._schema_from_columns(columns)
        return self.catalog.create_table(name, schema, key_columns=key)

    def load_rows(self, table_name: str, rows: Iterable[Row]) -> int:
        """Bulk-load rows into a table; returns the number added."""
        count = self.catalog.table(table_name).append_rows(rows)
        for index in self.catalog.indexes_for(table_name):
            index.rebuild()
        if count and not self.catalog.table(table_name).is_temporary:
            # New data makes every cached plan's estimates suspect.
            self.catalog.bump_stats_epoch()
        return count

    def create_index(
        self, index_name: str, table_name: str, column: str, clustered: bool = False
    ) -> None:
        """Create a sorted index on one column."""
        self.catalog.create_index(index_name, table_name, column, clustered=clustered)

    def analyze(
        self,
        table_name: str | None = None,
        histogram_kind: HistogramKind | None = HistogramKind.MAXDIFF,
        num_buckets: int = 32,
        histogram_columns: Sequence[str] | None = None,
    ) -> None:
        """Collect catalog statistics (for one table or all of them)."""
        names = [table_name] if table_name is not None else self.catalog.table_names
        for name in names:
            if name.startswith("__temp"):
                continue
            self.catalog.analyze(
                name,
                histogram_kind=histogram_kind,
                num_buckets=num_buckets,
                histogram_columns=histogram_columns,
            )

    def register_udf(self, name: str, fn: Callable) -> None:
        """Register a scalar user-defined function usable in SQL."""
        self._udfs[name.lower()] = fn
        # Cached plans embed bind-time function references; redefining a UDF
        # (or shadowing a builtin) must not serve plans calling the old one.
        self.plan_cache.clear()

    # -- querying -----------------------------------------------------------

    def bind_sql(
        self, sql: str, params: Mapping[str, object] | None = None
    ) -> LogicalQuery:
        """Parse and bind a SQL statement without executing it."""
        return bind(parse(sql), self.catalog, udfs=self._udfs, params=params)

    @property
    def server(self):
        """The engine's :class:`~repro.engine.server.QueryServer`, created
        lazily (admission controller + memory broker are built from the
        current configuration on first use)."""
        if self._server is None:
            with self._server_lock:
                if self._server is None:
                    from .server import QueryServer

                    self._server = QueryServer(self)
        return self._server

    def create_session(self, name: str | None = None):
        """Open a concurrent-server session (own temp-table namespace,
        session-scoped prepared statements and plan-cache entries).  Works
        with or without :attr:`EngineConfig.server_mode`; the flag only
        controls whether plain :meth:`execute` calls also route through the
        server."""
        return self.server.session(name)

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare a statement for repeated execution.

        The SQL is parsed eagerly; optimization products are cached in the
        plan cache on first execution and reused (modulo statistics-epoch
        invalidation) by every later one.  Host-variable statements share
        one parametric scenario set across all parameter bindings.
        """
        return PreparedStatement(self, sql)

    def _prepare(
        self,
        sql: str,
        ast: AstSelect | None = None,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        execution_mode: str | None = None,
        workers: int | None = None,
        parametric: bool = False,
        use_cache: bool = True,
        catalog: Catalog | None = None,
        cache_scope: str = "",
    ) -> PreparedExecution:
        """The single preparation path: parse, bind, optimize, SCIA — cached.

        Returns a :class:`PreparedExecution` whose plan is safe to execute
        (never a cached template itself).  ``use_cache=False`` re-does every
        phase from scratch without touching the cache, which is what
        :meth:`plan` defaults to so timing-sensitive callers (the optimizer
        calibration procedure) always observe cold optimization.

        ``catalog`` overrides the shared catalog with a session's overlay
        (:class:`~repro.engine.session.SessionCatalog`); ``cache_scope`` is
        that session's plan-cache scope.  Statements that reference a
        session-local table are cached under the scope (and the overlay's
        combined epoch) so one session's temp-table plan is never served to
        another; statements over shared tables keep the global scope and
        stay shared across sessions.
        """
        cat = catalog if catalog is not None else self.catalog
        phases: dict[str, float] = {}
        t0 = perf_counter()
        if ast is None:
            ast = parse(sql)
        t1 = perf_counter()
        phases["parse"] = t1 - t0
        query = bind(ast, cat, udfs=self._udfs, params=params)
        t2 = perf_counter()
        phases["bind"] = t2 - t1

        use_cache = use_cache and self.config.plan_cache_enabled
        epoch = cat.stats_epoch
        scope = ""
        if cache_scope:
            has_local = getattr(cat, "has_local", None)
            if has_local is not None and any(
                has_local(rel.table_name) for rel in query.relations
            ):
                scope = cache_scope
                epoch = cat.scoped_epoch
        exec_mode = execution_mode or self.config.execution_mode
        # A plan prepared for parallel pipelines is specialized to its
        # worker count and fan-out toggles (morsel assignment, staging
        # windows, which pipelines parallelize); never serve it to the
        # serial executor or a differently-shaped pool, and vice versa.
        exec_mode_key = PlanCache.execution_key(self.config, exec_mode, workers)

        if parametric and has_parameter_predicates(query):
            return self._prepare_parametric(
                query, params, mode, epoch, use_cache, phases, cat, scope
            )

        key = None
        entry: CachedPlan | None = None
        if use_cache:
            key = PlanCache.exact_key(
                deparse(query),
                parameter_signature(params),
                mode.value,
                exec_mode_key,
                scope=scope,
            )
            entry = self.plan_cache.lookup(key, epoch, feedback=self.feedback)

        optimizer = Optimizer(cat, self.config, estimator=self.estimator)
        if entry is not None:
            plan = clone_plan(entry.plan)
            scia_result = entry.scia
            # The cached plan stands in for one optimizer run; profiles stay
            # identical to a cold execution (only wall-clock time improves).
            optimizer.invocations += 1
            phases["optimize"] = perf_counter() - t2
            phases["scia"] = 0.0
            return PreparedExecution(
                query=query,
                plan=plan,
                scia=scia_result,
                optimizer=optimizer,
                cache_hit=True,
                phase_seconds=phases,
            )

        plan = optimizer.optimize(query)
        t3 = perf_counter()
        phases["optimize"] = t3 - t2
        scia_result: SciaResult | None = None
        if mode.collects_statistics:
            scia_result = insert_collectors(
                plan, cat, self.config, feedback=self.feedback
            )
            optimizer.annotator().annotate(plan)
        phases["scia"] = perf_counter() - t3
        if use_cache and key is not None:
            signatures: frozenset[str] = frozenset()
            feedback_epoch = 0
            if self.feedback is not None:
                # Remember which fragments this plan was optimized over, so
                # the cache can evict it the moment execution feedback proves
                # one of them badly misestimated.
                signatures = frozenset(plan_signatures(plan).values())
                feedback_epoch = self.feedback.epoch
            self.plan_cache.store(
                key,
                CachedPlan(
                    query=query,
                    plan=plan,
                    scia=scia_result,
                    epoch=epoch,
                    signatures=signatures,
                    feedback_epoch=feedback_epoch,
                ),
            )
            # Execution mutates plans in place; keep the template pristine.
            plan = clone_plan(plan)
        return PreparedExecution(
            query=query,
            plan=plan,
            scia=scia_result,
            optimizer=optimizer,
            phase_seconds=phases,
        )

    def _prepare_parametric(
        self,
        query: LogicalQuery,
        params: Mapping[str, object] | None,
        mode: DynamicMode,
        epoch,
        use_cache: bool,
        phases: dict[str, float],
        catalog: Catalog | None = None,
        scope: str = "",
    ) -> PreparedExecution:
        """Parametric (section 4 hybrid) preparation with scenario-set reuse.

        Scenario plan *structure* is independent of the parameter values (the
        scenario estimator deliberately ignores them), so the expensive
        multi-scenario optimization is cached under the parameter-masked SQL
        and shared by every binding; per execution only the cheap
        ``choose_plan`` selection, value plugging and annotation remain.
        """
        cat = catalog if catalog is not None else self.catalog
        t2 = perf_counter()
        key = None
        cache_hit = False
        scenarios = None
        if use_cache:
            key = PlanCache.parametric_key(
                deparse(mask_parameters(query)), scope=scope
            )
            entry = self.plan_cache.lookup(key, epoch)
            if entry is not None:
                scenarios = entry.parametric
                cache_hit = True
        if scenarios is None:
            scenarios = ParametricOptimizer(cat, self.config).optimize(query)
            if use_cache and key is not None:
                self.plan_cache.store(
                    key, CachedScenarios(parametric=scenarios, epoch=epoch)
                )
        # The run-time decision step: pick the anticipated case closest to
        # the estimated selectivity of the *current* parameter values.
        scenario, actual = choose_plan(scenarios, cat, query=query)
        plan = plug_parameters(scenario.plan, params or {})
        # Execution-time estimates use the now-known parameter values.
        estimator = Estimator(use_parameter_values=True)
        optimizer = Optimizer(cat, self.config, estimator=estimator)
        optimizer.invocations += 1
        optimizer.annotator().annotate(plan)
        t3 = perf_counter()
        phases["optimize"] = t3 - t2
        scia_result: SciaResult | None = None
        if mode.collects_statistics:
            scia_result = insert_collectors(
                plan, cat, self.config, feedback=self.feedback
            )
        phases["scia"] = perf_counter() - t3
        return PreparedExecution(
            query=query,
            plan=plan,
            scia=scia_result,
            optimizer=optimizer,
            cache_hit=cache_hit,
            parametric_plans=scenarios.plan_count,
            parametric_choice=(
                f"chose {scenario.describe()} for observed sel~{actual:.3f} "
                f"out of {scenarios.plan_count} plan(s)"
            ),
            phase_seconds=phases,
        )

    def plan(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        use_cache: bool = False,
    ) -> tuple[PlanNode, SciaResult | None, Optimizer]:
        """Optimize a statement, optionally inserting statistics collectors.

        ``use_cache`` defaults to off so callers that *measure* optimization
        (the calibration procedure) or inspect fresh plans always pay the
        full cost; pass ``True`` to observe exactly what a warm
        :meth:`execute` would run.
        """
        prepared = self._prepare(
            sql, params=params, mode=mode, use_cache=use_cache
        )
        return prepared.plan, prepared.scia, prepared.optimizer

    def explain(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
    ) -> str:
        """EXPLAIN: the annotated plan as text."""
        plan, __, __opt = self.plan(sql, params, mode)
        return explain_plan(plan)

    def execute(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        memory_budget_pages: int | None = None,
        parametric: bool = False,
        execution_mode: str | None = None,
        workers: int | None = None,
    ) -> QueryResult:
        """Execute a statement under the given dynamic-re-optimization mode.

        With ``parametric=True`` and host-variable predicates present, the
        optimizer anticipates several parameter-selectivity scenarios at
        compile time and the cheapest matching plan is chosen once the
        values are known — the section 4 hybrid; Dynamic Re-Optimization
        stays armed for the cases no scenario anticipated.

        ``execution_mode`` overrides :attr:`EngineConfig.execution_mode`
        (``"row"``, ``"batch"``, ``"parallel"`` or ``"columnar"``) for this
        query only; all paths yield identical rows, cost-clock charges and
        observed statistics (columnar with the default
        ``zone_map_cost_mode="charge"``).  ``workers`` overrides
        :attr:`EngineConfig.parallel_workers` for this query (parallel mode
        only; 0 means one worker per CPU core).

        Preparation (parse/bind/optimize/SCIA) goes through the plan cache:
        repeats of the same statement under an unchanged statistics epoch
        reuse the cached plan.  Simulated-cost profiles are identical warm
        or cold — the cost clock is always charged one calibrated
        optimization — so only wall-clock latency changes; see
        :attr:`ExecutionProfile.phases` and
        :attr:`ExecutionProfile.plan_cache_hit`.

        With :attr:`EngineConfig.server_mode` on, the statement routes
        through the concurrent query server — admission control and the
        cross-query memory broker — on an ad-hoc basis (results are
        byte-identical; profiles gain the server telemetry fields).  Use
        :meth:`create_session` for session-scoped temp tables and
        prepared handles.
        """
        if self.config.server_mode:
            return self.server.execute(
                sql,
                params=params,
                mode=mode,
                memory_budget_pages=memory_budget_pages,
                parametric=parametric,
                execution_mode=execution_mode,
                workers=workers,
            )
        prepared = self._prepare(
            sql,
            params=params,
            mode=mode,
            execution_mode=execution_mode,
            workers=workers,
            parametric=parametric,
        )
        return self._run(
            prepared, sql, mode, memory_budget_pages, execution_mode, workers
        )

    def _execute_prepared(
        self,
        sql: str,
        ast: AstSelect,
        params: Mapping[str, object] | None,
        mode: DynamicMode,
        memory_budget_pages: int | None,
        parametric: bool,
        execution_mode: str | None,
        workers: int | None = None,
    ) -> QueryResult:
        """Execution entry point for :class:`PreparedStatement`."""
        if self.config.server_mode:
            return self.server._execute(
                session=None,
                sql=sql,
                ast=ast,
                params=params,
                mode=mode,
                memory_budget_pages=memory_budget_pages,
                parametric=parametric,
                execution_mode=execution_mode,
                workers=workers,
            )
        prepared = self._prepare(
            sql,
            ast=ast,
            params=params,
            mode=mode,
            execution_mode=execution_mode,
            workers=workers,
            parametric=parametric,
        )
        return self._run(
            prepared, sql, mode, memory_budget_pages, execution_mode, workers
        )

    def _run(
        self,
        prepared: PreparedExecution,
        sql: str,
        mode: DynamicMode,
        memory_budget_pages: int | None = None,
        execution_mode: str | None = None,
        workers: int | None = None,
        analysis_sink: dict | None = None,
        catalog: Catalog | None = None,
        lease=None,
        session_label: str = "",
        admission_wait_s: float = 0.0,
        admission_queue_depth: int = 0,
        executed_via: str = "inline",
    ) -> QueryResult:
        """Run a prepared execution through the dynamic-re-optimization loop.

        ``analysis_sink`` (EXPLAIN ANALYZE) forces a tracer for this run and
        receives the built :class:`~repro.observe.analyze.ExplainAnalyzeReport`
        under ``"report"``.

        The server path passes ``catalog`` (the session's overlay — temp
        tables the re-optimizer materializes land there), a broker
        ``lease`` whose granted pages replace the default memory budget and
        whose mid-query re-grants reach this execution's
        :class:`MemoryManager` via :meth:`SessionLease.attach`, and the
        admission telemetry recorded on the profile.
        """
        cat = catalog if catalog is not None else self.catalog
        query = prepared.query
        plan = prepared.plan
        optimizer = prepared.optimizer
        scia_result = prepared.scia
        run_config = self.config
        updates: dict[str, object] = {}
        if execution_mode is not None:
            updates["execution_mode"] = execution_mode
        if workers is not None:
            updates["parallel_workers"] = workers
        if updates:
            run_config = self.config.with_updates(**updates)
            run_config.validate()

        clock = CostClock(self.config.cost)
        tracer: QueryTracer | None = None
        if run_config.tracing or analysis_sink is not None:
            tracer = QueryTracer(clock, label=sql)
            tracer.record_compile_phases(prepared.phase_seconds)
        buffer_pool = BufferPool(self.config.buffer_pool_pages, clock)
        temp_manager = TempTableManager(cat, buffer_pool)
        cost_model = CostModel(self.config)
        # One calibrated optimization is charged whether the plan came from
        # the optimizer or the cache: the simulated timeline models a system
        # that optimized this query once, keeping profiles deterministic.
        clock.charge_optimizer(self.calibration.estimated_units(len(query.relations)))

        if lease is not None:
            budget = lease.granted_pages
        else:
            budget = memory_budget_pages or self.config.query_memory_pages
        memory_manager = MemoryManager(budget)
        if lease is not None:
            # Broker re-grants/reclaims now flow into this manager; they
            # take effect at the next dynamic re-allocation.
            lease.attach(memory_manager)
            budget = memory_manager.budget_pages
        ctx = RuntimeContext(
            catalog=cat,
            config=run_config,
            clock=clock,
            buffer_pool=buffer_pool,
            temp_manager=temp_manager,
            cost_model=cost_model,
            memory_budget_pages=budget,
            tracer=tracer,
            # With feedback enabled the dispatcher snapshots each adopted
            # plan's estimates here, so query-end absorption compares what
            # the optimizer *planned with* against what actually flowed.
            estimate_snapshots={} if self.feedback is not None else None,
        )
        allocation = memory_manager.allocate(plan, tracer=tracer)
        ctx.allocation.update(allocation)
        # Annotate under the actual grants so the baseline estimate matches
        # the execution the Memory Manager set up.
        optimizer.annotator(allocation=ctx.allocation).annotate(plan)
        initial_estimate = plan.est.total_cost

        controller: DynamicReoptimizer | None = None
        if mode.collects_statistics:
            controller = DynamicReoptimizer(
                ctx=ctx,
                optimizer=optimizer,
                memory_manager=memory_manager,
                query=query,
                mode=mode,
                calibration=self.calibration,
                params=self.config.reopt,
                udfs=self._udfs,
            )
            ctx.controller = controller

        dispatcher = Dispatcher(ctx)
        exec_span = None
        if tracer is not None:
            exec_span = tracer.begin(
                "execute", "phase", mode=mode.value,
                execution=run_config.execution_mode,
            )
        t_exec = perf_counter()
        try:
            outcome = dispatcher.run(plan)
        finally:
            temp_manager.drop_all()
        execute_s = perf_counter() - t_exec
        if tracer is not None:
            tracer.end(exec_span, rows=len(outcome.rows))

        seconds = prepared.phase_seconds
        profile = ExecutionProfile(
            sql=sql,
            mode=mode.value,
            parametric_plan_count=prepared.parametric_plans,
            parametric_choice=prepared.parametric_choice,
            total_cost=clock.now,
            breakdown=clock.breakdown.snapshot(),
            buffer=buffer_pool.stats,
            row_count=len(outcome.rows),
            optimizer_invocations=optimizer.invocations,
            plan_switches=ctx.switches,
            memory_reallocations=ctx.reallocations,
            initial_estimated_cost=initial_estimate,
            collectors_inserted=scia_result.collector_points if scia_result else 0,
            statistics_kept=len(scia_result.kept) if scia_result else 0,
            statistics_dropped=len(scia_result.dropped) if scia_result else 0,
            statistics_budget=scia_result.budget if scia_result else 0.0,
            phases=PhaseBreakdown(
                parse_s=seconds.get("parse", 0.0),
                bind_s=seconds.get("bind", 0.0),
                optimize_s=seconds.get("optimize", 0.0),
                scia_s=seconds.get("scia", 0.0),
                execute_s=execute_s,
            ),
            plan_cache_hit=prepared.cache_hit,
            workers=ctx.parallel.workers,
            morsels=ctx.parallel.morsels,
            parallel_pipelines=ctx.parallel.pipelines,
            parallel_join_pipelines=ctx.parallel.join_pipelines,
            parallel_preagg_pipelines=ctx.parallel.preagg_pipelines,
            parallel_rows_shipped=ctx.parallel.rows_shipped,
            parallel_rows_preaggregated=ctx.parallel.rows_preaggregated,
            parallel_prefetched_morsels=ctx.parallel.prefetched_morsels,
            parallel_build_pipelines=ctx.parallel.build_pipelines,
            parallel_sort_pipelines=ctx.parallel.sort_pipelines,
            sort_runs_merged=ctx.parallel.sort_runs_merged,
            rows_spilled=ctx.parallel.rows_spilled,
            morsels_spilled=ctx.parallel.morsels_spilled,
            partitions_spilled=ctx.parallel.partitions_spilled,
            columnar_pipelines=ctx.columnar.pipelines,
            columnar_keyed_pipelines=ctx.columnar.keyed_pipelines,
            columnar_parallel_pipelines=ctx.columnar.parallel_pipelines,
            zone_map_skips=ctx.columnar.groups_skipped,
            zone_map_groups_read=ctx.columnar.groups_read,
            zone_map_pages_skipped=ctx.columnar.pages_skipped,
            zone_map_rows_skipped=ctx.columnar.rows_skipped,
            zone_map_by_scan={
                node_id: dict(per_scan)
                for node_id, per_scan in sorted(ctx.columnar.by_scan.items())
            },
            vectorized_agg_pipelines=ctx.vector.agg_pipelines,
            vectorized_probe_pipelines=ctx.vector.probe_pipelines,
            rows_folded=ctx.vector.rows_folded,
            pipeline_wall_s={
                str(pipeline): {
                    str(pid): round(secs, 6)
                    for pid, secs in sorted(per_worker.items())
                }
                for pipeline, per_worker in sorted(
                    ctx.parallel.pipeline_worker_seconds.items()
                )
            },
            session=session_label,
            executed_via=executed_via,
            admission_wait_s=admission_wait_s,
            queue_depth_at_admission=admission_queue_depth,
            memory_requested_pages=(
                lease.requested_pages if lease is not None else budget
            ),
            memory_granted_pages=(
                lease.granted_pages if lease is not None else budget
            ),
            broker_regrants=lease.regrants if lease is not None else 0,
            broker_reclaims=lease.reclaims if lease is not None else 0,
            events=list(controller.events) if controller else [],
            plan_explanations=[explain_plan(p) for p in outcome.plan_history],
            remainder_sqls=[
                e.directive.remainder_sql for e in outcome.switch_events
            ],
            trace=tracer,
        )
        if self.feedback is not None:
            # Post-clock bookkeeping: absorb this execution's estimate-vs-
            # actual observations into the repository, then surface them on
            # the profile.  Corrections were applied at annotation time and
            # are stamped on the nodes they changed.
            profile.feedback_corrections = sum(
                1
                for p in outcome.plan_history
                for node in p.walk()
                if getattr(node, "feedback_correction", None) is not None
            )
            summary = self.feedback.absorb_execution(
                outcome, ctx, stats_epoch=cat.stats_epoch
            )
            profile.feedback_records = summary["records"]
            profile.feedback_worst_q_error = summary["worst_q_error"]
            profile.feedback_worst_fragment = summary["worst_fragment"]
        result = QueryResult(
            rows=outcome.rows, schema=outcome.final_plan.schema, profile=profile
        )
        self._record_metrics(profile, ctx, clock, buffer_pool, execute_s)
        if (
            self.config.slow_query_s > 0
            and profile.phases.total_s >= self.config.slow_query_s
        ):
            emit_slow_query(
                profile,
                threshold_s=self.config.slow_query_s,
                path=self.config.slow_query_path,
                metrics=self.metrics,
            )
        if analysis_sink is not None:
            analysis_sink["report"] = analyze_execution(
                sql=sql,
                outcome=outcome,
                ctx=ctx,
                tracer=tracer,
                result=result,
                profile=profile,
            )
        return result

    def _record_metrics(self, profile, ctx, clock, buffer_pool, execute_s) -> None:
        """Fold one execution into the cross-query metrics registry.

        Purely additive bookkeeping after the clock stopped — it can never
        perturb simulated costs or statistics.
        """
        m = self.metrics
        m.counter("engine.queries").inc()
        m.counter("engine.rows_returned").inc(profile.row_count)
        m.counter("reoptimizer.plan_switches").inc(ctx.switches)
        m.counter("reoptimizer.memory_reallocations").inc(ctx.reallocations)
        m.counter("reoptimizer.collectors_inserted").inc(profile.collectors_inserted)
        m.counter("parallel.pipelines").inc(ctx.parallel.pipelines)
        m.counter("parallel.morsels").inc(ctx.parallel.morsels)
        m.counter("parallel.rows_shipped").inc(ctx.parallel.rows_shipped)
        m.counter("parallel.rows_preaggregated").inc(ctx.parallel.rows_preaggregated)
        m.counter("parallel.build_pipelines").inc(ctx.parallel.build_pipelines)
        m.counter("parallel.sort_pipelines").inc(ctx.parallel.sort_pipelines)
        m.counter("parallel.sort_runs_merged").inc(ctx.parallel.sort_runs_merged)
        m.counter("parallel.rows_spilled").inc(ctx.parallel.rows_spilled)
        m.counter("parallel.morsels_spilled").inc(ctx.parallel.morsels_spilled)
        m.counter("parallel.partitions_spilled").inc(ctx.parallel.partitions_spilled)
        m.counter("columnar.pipelines").inc(ctx.columnar.pipelines)
        m.counter("columnar.keyed_pipelines").inc(ctx.columnar.keyed_pipelines)
        m.counter("columnar.parallel_pipelines").inc(ctx.columnar.parallel_pipelines)
        m.counter("columnar.zone_map.groups_read").inc(ctx.columnar.groups_read)
        m.counter("columnar.zone_map.groups_skipped").inc(ctx.columnar.groups_skipped)
        m.counter("columnar.zone_map.pages_skipped").inc(ctx.columnar.pages_skipped)
        m.counter("vector.agg_pipelines").inc(ctx.vector.agg_pipelines)
        m.counter("vector.probe_pipelines").inc(ctx.vector.probe_pipelines)
        m.counter("vector.rows_folded").inc(ctx.vector.rows_folded)
        m.gauge("buffer_pool.hit_rate").set(buffer_pool.stats.hit_ratio)
        m.gauge("plan_cache.hit_rate").set(self.plan_cache.stats.hit_rate)
        m.histogram("query.simulated_cost").observe(clock.now)
        m.histogram("query.execute_wall_s").observe(execute_s)

    def metrics_snapshot(self) -> dict[str, dict]:
        """Snapshot of this engine's metrics registry (plain JSON-able dict)."""
        return self.metrics.snapshot()

    def feedback_report(self) -> dict:
        """The feedback repository's contents, worst fragments first.

        Always JSON-able; ``{"enabled": False}`` when the repository is
        disabled (:attr:`EngineConfig.feedback_enabled` / ``REPRO_FEEDBACK``).
        """
        if self.feedback is None:
            return {"enabled": False}
        return self.feedback.report()

    def explain_analyze(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        memory_budget_pages: int | None = None,
        execution_mode: str | None = None,
        workers: int | None = None,
    ) -> ExplainAnalyzeReport:
        """EXPLAIN ANALYZE: execute the statement, then report estimated vs.
        actual rows/size/cost per plan node with Q-errors and
        statistics-collector attribution.

        The executed rows ride on ``report.result``; ``str(report)`` (or
        ``report.render()``) is the annotated plan-tree text.  A tracer is
        attached for the run regardless of :attr:`EngineConfig.tracing`
        (tracing never perturbs simulated costs, so the profile matches a
        plain :meth:`execute`).
        """
        prepared = self._prepare(
            sql,
            params=params,
            mode=mode,
            execution_mode=execution_mode,
            workers=workers,
        )
        sink: dict = {}
        self._run(
            prepared,
            sql,
            mode,
            memory_budget_pages,
            execution_mode,
            workers,
            analysis_sink=sink,
        )
        return sink["report"]

    # -- introspection ---------------------------------------------------------

    def table(self, name: str) -> Table:
        """The table object registered under ``name``."""
        return self.catalog.table(name)

    def drop_table(self, name: str) -> None:
        """Drop a table."""
        self.catalog.drop_table(name)

    def __contains__(self, name: str) -> bool:
        return name in self.catalog

    def require_tables(self, names: Sequence[str]) -> None:
        """Raise :class:`CatalogError` unless every named table exists."""
        missing = [n for n in names if n not in self.catalog]
        if missing:
            raise CatalogError(f"missing tables: {missing}")
