"""The public engine facade.

A :class:`Database` owns a catalog and a configuration and exposes the user
workflow: create and load tables, build indexes, ANALYZE, and execute SQL
with Dynamic Re-Optimization in any of the paper's modes.  Each execution
gets a fresh cost clock and buffer pool so experiment measurements are
independent (the paper likewise reports per-query times on a dedicated
cluster, averaged over repeated cold runs).

Typical usage::

    db = Database()
    db.create_table("r", [("id", DataType.INTEGER), ("a", DataType.INTEGER)], key=["id"])
    db.load_rows("r", rows)
    db.analyze()
    result = db.execute("SELECT count(*) FROM r WHERE a < 10", mode=DynamicMode.FULL)
    print(result.profile.summary())
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..config import EngineConfig
from ..core.modes import DynamicMode
from ..core.parametric import (
    ParametricOptimizer,
    choose_plan,
    has_parameter_predicates,
)
from ..core.reoptimizer import DynamicReoptimizer
from ..core.scia import SciaResult, insert_collectors
from ..errors import CatalogError
from ..executor.dispatcher import Dispatcher
from ..executor.memory import MemoryManager
from ..executor.runtime import RuntimeContext
from ..optimizer.calibration import OptimizerCalibration
from ..optimizer.cost_model import CostModel
from ..optimizer.optimizer import Optimizer
from ..plans.logical import LogicalQuery
from ..plans.physical import PlanNode
from ..plans.printer import explain as explain_plan
from ..sql.binder import bind
from ..sql.parser import parse
from ..stats.estimator import Estimator
from ..stats.histogram import HistogramKind
from ..storage.buffer import BufferPool
from ..storage.catalog import Catalog
from ..storage.disk import CostClock
from ..storage.schema import Column, DataType, Schema
from ..storage.table import Row, Table
from ..storage.temp import TempTableManager
from .profile import ExecutionProfile
from .results import QueryResult

ColumnSpec = Column | tuple[str, DataType]


class Database:
    """An embedded analytical database with Dynamic Re-Optimization."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        calibration: OptimizerCalibration | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.config.validate()
        self.catalog = Catalog(self.config.page_size)
        self.calibration = calibration or OptimizerCalibration()
        self.estimator = Estimator()
        self._udfs: dict[str, Callable] = {}

    # -- DDL / loading ------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[ColumnSpec] | Schema,
        key: Sequence[str] = (),
    ) -> Table:
        """Create an empty table."""
        if isinstance(columns, Schema):
            schema = columns
        else:
            schema = Schema(
                c if isinstance(c, Column) else Column(c[0], c[1]) for c in columns
            )
        return self.catalog.create_table(name, schema, key_columns=key)

    def load_rows(self, table_name: str, rows: Iterable[Row]) -> int:
        """Bulk-load rows into a table; returns the number added."""
        count = self.catalog.table(table_name).append_rows(rows)
        for index in self.catalog.indexes_for(table_name):
            index.rebuild()
        return count

    def create_index(
        self, index_name: str, table_name: str, column: str, clustered: bool = False
    ) -> None:
        """Create a sorted index on one column."""
        self.catalog.create_index(index_name, table_name, column, clustered=clustered)

    def analyze(
        self,
        table_name: str | None = None,
        histogram_kind: HistogramKind | None = HistogramKind.MAXDIFF,
        num_buckets: int = 32,
        histogram_columns: Sequence[str] | None = None,
    ) -> None:
        """Collect catalog statistics (for one table or all of them)."""
        names = [table_name] if table_name is not None else self.catalog.table_names
        for name in names:
            if name.startswith("__temp"):
                continue
            self.catalog.analyze(
                name,
                histogram_kind=histogram_kind,
                num_buckets=num_buckets,
                histogram_columns=histogram_columns,
            )

    def register_udf(self, name: str, fn: Callable) -> None:
        """Register a scalar user-defined function usable in SQL."""
        self._udfs[name.lower()] = fn

    # -- querying -----------------------------------------------------------

    def bind_sql(
        self, sql: str, params: Mapping[str, object] | None = None
    ) -> LogicalQuery:
        """Parse and bind a SQL statement without executing it."""
        return bind(parse(sql), self.catalog, udfs=self._udfs, params=params)

    def plan(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
    ) -> tuple[PlanNode, SciaResult | None, Optimizer]:
        """Optimize a statement, optionally inserting statistics collectors."""
        query = self.bind_sql(sql, params)
        optimizer = Optimizer(self.catalog, self.config, estimator=self.estimator)
        plan = optimizer.optimize(query)
        scia_result = None
        if mode.collects_statistics:
            scia_result = insert_collectors(plan, self.catalog, self.config)
            optimizer.annotator().annotate(plan)
        return plan, scia_result, optimizer

    def explain(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
    ) -> str:
        """EXPLAIN: the annotated plan as text."""
        plan, __, __opt = self.plan(sql, params, mode)
        return explain_plan(plan)

    def execute(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        memory_budget_pages: int | None = None,
        parametric: bool = False,
        execution_mode: str | None = None,
    ) -> QueryResult:
        """Execute a statement under the given dynamic-re-optimization mode.

        With ``parametric=True`` and host-variable predicates present, the
        optimizer anticipates several parameter-selectivity scenarios at
        compile time and the cheapest matching plan is chosen once the
        values are known — the section 4 hybrid; Dynamic Re-Optimization
        stays armed for the cases no scenario anticipated.

        ``execution_mode`` overrides :attr:`EngineConfig.execution_mode`
        (``"row"`` or ``"batch"``) for this query only; both paths yield
        identical rows, cost-clock charges and observed statistics.
        """
        query = self.bind_sql(sql, params)
        run_config = self.config
        if execution_mode is not None:
            run_config = self.config.with_updates(execution_mode=execution_mode)
            run_config.validate()

        clock = CostClock(self.config.cost)
        buffer_pool = BufferPool(self.config.buffer_pool_pages, clock)
        temp_manager = TempTableManager(self.catalog, buffer_pool)
        cost_model = CostModel(self.config)

        parametric_choice = ""
        parametric_plans = 0
        if parametric and has_parameter_predicates(query):
            # Scenario plans are produced at compile time (stored with the
            # query); only the cheap run-time *choice* happens here, so the
            # execution clock is charged a single optimization like the
            # conventional path.
            scenarios = ParametricOptimizer(self.catalog, self.config).optimize(query)
            scenario, actual = choose_plan(scenarios, self.catalog)
            parametric_plans = scenarios.plan_count
            parametric_choice = (
                f"chose {scenario.describe()} for observed sel~{actual:.3f} "
                f"out of {scenarios.plan_count} plan(s)"
            )
            clock.charge_optimizer(
                self.calibration.estimated_units(len(query.relations))
            )
            # Execution-time estimates use the now-known parameter values.
            estimator = Estimator(use_parameter_values=True)
            optimizer = Optimizer(self.catalog, self.config, estimator=estimator)
            optimizer.invocations += 1
            plan = scenario.plan
            optimizer.annotator().annotate(plan)
        else:
            optimizer = Optimizer(self.catalog, self.config, estimator=self.estimator)
            # Initial optimization is charged like any other (calibrated).
            clock.charge_optimizer(
                self.calibration.estimated_units(len(query.relations))
            )
            plan = optimizer.optimize(query)

        scia_result: SciaResult | None = None
        if mode.collects_statistics:
            scia_result = insert_collectors(plan, self.catalog, self.config)

        budget = memory_budget_pages or self.config.query_memory_pages
        memory_manager = MemoryManager(budget)
        ctx = RuntimeContext(
            catalog=self.catalog,
            config=run_config,
            clock=clock,
            buffer_pool=buffer_pool,
            temp_manager=temp_manager,
            cost_model=cost_model,
        )
        allocation = memory_manager.allocate(plan)
        ctx.allocation.update(allocation)
        # Annotate under the actual grants so the baseline estimate matches
        # the execution the Memory Manager set up.
        optimizer.annotator(allocation=ctx.allocation).annotate(plan)
        initial_estimate = plan.est.total_cost

        controller: DynamicReoptimizer | None = None
        if mode.collects_statistics:
            controller = DynamicReoptimizer(
                ctx=ctx,
                optimizer=optimizer,
                memory_manager=memory_manager,
                query=query,
                mode=mode,
                calibration=self.calibration,
                params=self.config.reopt,
                udfs=self._udfs,
            )
            ctx.controller = controller

        dispatcher = Dispatcher(ctx)
        try:
            outcome = dispatcher.run(plan)
        finally:
            temp_manager.drop_all()

        profile = ExecutionProfile(
            sql=sql,
            mode=mode.value,
            parametric_plan_count=parametric_plans,
            parametric_choice=parametric_choice,
            total_cost=clock.now,
            breakdown=clock.breakdown.snapshot(),
            buffer=buffer_pool.stats,
            row_count=len(outcome.rows),
            optimizer_invocations=optimizer.invocations,
            plan_switches=ctx.switches,
            memory_reallocations=ctx.reallocations,
            initial_estimated_cost=initial_estimate,
            collectors_inserted=scia_result.collector_points if scia_result else 0,
            statistics_kept=len(scia_result.kept) if scia_result else 0,
            statistics_dropped=len(scia_result.dropped) if scia_result else 0,
            statistics_budget=scia_result.budget if scia_result else 0.0,
            events=list(controller.events) if controller else [],
            plan_explanations=[explain_plan(p) for p in outcome.plan_history],
            remainder_sqls=[
                e.directive.remainder_sql for e in outcome.switch_events
            ],
        )
        return QueryResult(
            rows=outcome.rows, schema=outcome.final_plan.schema, profile=profile
        )

    # -- introspection ---------------------------------------------------------

    def table(self, name: str) -> Table:
        """The table object registered under ``name``."""
        return self.catalog.table(name)

    def drop_table(self, name: str) -> None:
        """Drop a table."""
        self.catalog.drop_table(name)

    def __contains__(self, name: str) -> bool:
        return name in self.catalog

    def require_tables(self, names: Sequence[str]) -> None:
        """Raise :class:`CatalogError` unless every named table exists."""
        missing = [n for n in names if n not in self.catalog]
        if missing:
            raise CatalogError(f"missing tables: {missing}")
