"""Query results returned by :meth:`repro.engine.Database.execute`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..storage.schema import Schema
from ..storage.table import Row
from .profile import ExecutionProfile


@dataclass
class QueryResult:
    """Rows plus schema plus the execution profile."""

    rows: list[Row]
    schema: Schema
    profile: ExecutionProfile

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Output column names, in order."""
        return self.schema.names

    def column(self, name: str) -> list:
        """All values of one output column."""
        position = self.schema.index_of(name)
        return [row[position] for row in self.rows]

    def to_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def format_table(self, limit: int = 20) -> str:
        """Render the first ``limit`` rows as an aligned text table."""
        names = [n.rsplit(".", 1)[-1] for n in self.column_names]
        shown: Sequence[Row] = self.rows[:limit]
        rendered = [[_fmt(v) for v in row] for row in shown]
        widths = [
            max(len(names[i]), *(len(r[i]) for r in rendered)) if rendered else len(names[i])
            for i in range(len(names))
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [" | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rendered]
        suffix = [] if len(self.rows) <= limit else [f"... ({len(self.rows)} rows total)"]
        return "\n".join([header, rule, *body, *suffix])


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
