"""The concurrent query server: admission control + cross-query memory.

Every execution path built before this module ran one query at a time, so
engine throughput was bounded by single-query latency — and the paper's
memory re-allocation trigger (section 2.3) only ever saw the pressure one
query put on itself.  The server runs many sessions against one shared
:class:`~repro.engine.database.Database` and supplies the two pieces of
machinery that makes that safe and interesting:

**Admission control** (:class:`AdmissionController`) bounds concurrency at
``max_sessions`` statements in flight, parking excess arrivals in a bounded
priority queue (FIFO within a priority level).  A full queue rejects
immediately and a parked statement times out after ``admission_timeout_s``
— both raise :class:`~repro.errors.AdmissionError`.

**The global memory broker** (:class:`GlobalMemoryBroker`) generalizes
:meth:`MemoryManager.split_grant` from parallel workers to sessions: the
server-wide page pool is divided into per-session leases.  Under the
``fair`` policy a lease may *borrow* idle pages beyond its fair share; when
another session arrives (or leaves), the broker reclaims borrowed headroom
and re-grants freed pages to running leases by resizing their
:class:`~repro.executor.memory.MemoryManager` budgets mid-query.  The
resize lands at the query's next dynamic re-allocation (a statistics
collector completing), which is exactly the paper's trigger — now fed by
real cross-query pressure instead of a synthetic budget change.  Pages a
manager has already promised to operators (``reserved_pages``) are never
reclaimed, preserving the paper's started-operators-keep-their-grants rule.

Statements run on the caller's thread (``worker_mode="thread"``, default:
shared memory, mid-query re-grants reach the running query) or in a forked
child per statement (``worker_mode="fork"``: true multi-core throughput;
the lease is fixed at admission because the child's memory is private).

Determinism: an uncontended server grants every statement its full
requested budget (the pool defaults to ``max_sessions *
query_memory_pages``), so results *and profiles* are byte-identical to
inline execution; under contention, results stay byte-identical — grants
only change plan *timing* knobs the executor is deterministic over — while
memory telemetry records the arbitration that actually happened.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import warnings
from time import monotonic, perf_counter
from typing import TYPE_CHECKING, Mapping

from ..core.modes import DynamicMode
from ..errors import AdmissionError
from ..executor.memory import MemoryManager
from .session import Session, SessionCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observe.metrics import MetricsRegistry
    from ..sql.ast import AstSelect
    from .database import Database
    from .results import QueryResult

__all__ = [
    "AdmissionController",
    "GlobalMemoryBroker",
    "QueryServer",
    "SessionLease",
]

#: Bucket bounds for the broker's page-size histograms (powers of four, in
#: pages — the default wall-clock-oriented buckets bottom out far below any
#: real grant).
_PAGE_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0)


class SessionLease:
    """One session-statement's slice of the server's page pool.

    ``granted_pages`` is live: the broker may grow it (a re-grant, when
    pages free up) or shrink it (a reclaim, when another session needs its
    guarantee) while the statement runs.  Once a
    :class:`~repro.executor.memory.MemoryManager` is attached, grant
    changes flow through :meth:`MemoryManager.resize`, whose
    ``reserved_pages`` floor caps how much a reclaim can actually take.
    """

    def __init__(self, label: str, requested_pages: int, guarantee_pages: int) -> None:
        self.label = label
        self.requested_pages = requested_pages
        self.guarantee_pages = guarantee_pages
        self.granted_pages = 0
        self.regrants = 0
        self.reclaims = 0
        self._manager: MemoryManager | None = None

    def attach(self, manager: MemoryManager) -> None:
        """Bind the running query's memory manager to this lease."""
        self._manager = manager
        # A re-grant may have landed between lease acquisition and the
        # manager's construction; converge on the lease's current view.
        manager.resize(self.granted_pages)

    def reclaim_floor(self) -> int:
        """Pages this lease can never give back (guarantee + promised grants)."""
        reserved = self._manager.reserved_pages if self._manager is not None else 0
        return max(self.guarantee_pages, reserved, 1)

    def apply_grant(self, pages: int) -> int:
        """Set the grant (broker-internal; called under the broker lock).

        Returns the grant actually in force — a shrink below the attached
        manager's reserved pages is floored by :meth:`MemoryManager.resize`.
        """
        pages = max(pages, 1)
        if self._manager is not None:
            pages = self._manager.resize(pages)
        before = self.granted_pages
        self.granted_pages = pages
        if pages > before:
            self.regrants += 1
        elif pages < before:
            self.reclaims += 1
        return pages


class GlobalMemoryBroker:
    """Arbitrates the server-wide page pool across session leases.

    Policies:

    * ``"fair"`` (default) — a default-budget statement is guaranteed
      ``min(requested, total // max_sessions)`` pages and may borrow idle
      pages up to its full request; arrivals reclaim borrowed headroom
      (never below a lease's guarantee or its manager's promised pages) and
      departures re-grant freed pages to running leases in arrival order.
    * ``"static"`` — a default-budget statement gets exactly its fair share,
      no borrowing, no mid-query changes: predictable, lower utilization.

    Statements with an *explicit* ``memory_budget_pages`` are granted
    exactly that amount under both policies (their profile must not depend
    on server state); a request larger than the whole pool is refused with
    :class:`~repro.errors.AdmissionError`.
    """

    def __init__(
        self,
        total_pages: int,
        max_sessions: int,
        policy: str = "fair",
        metrics: "MetricsRegistry | None" = None,
        timeout_s: float = 120.0,
    ) -> None:
        self.total_pages = max(1, total_pages)
        self.max_sessions = max(1, max_sessions)
        self.policy = policy
        self.timeout_s = timeout_s
        self._metrics = metrics
        self._cond = threading.Condition()
        #: Live leases in arrival order (re-grant priority).
        self._leases: list[SessionLease] = []

    @property
    def fair_share(self) -> int:
        """Per-session guarantee under the fair policy (never zero)."""
        return max(
            1, MemoryManager.split_grant(self.total_pages, self.max_sessions)[0]
        )

    def granted_pages(self) -> int:
        """Pages currently out on leases (callers need not hold the lock:
        reads are a consistent-enough snapshot for telemetry)."""
        return sum(lease.granted_pages for lease in self._leases)

    def free_pages(self) -> int:
        """Pages not currently granted to any lease."""
        return self.total_pages - self.granted_pages()

    def acquire(
        self, label: str, requested_pages: int, explicit: bool = False
    ) -> SessionLease:
        """Block until a lease with at least its guarantee can be issued."""
        requested = max(1, requested_pages)
        guarantee = requested if explicit else min(requested, self.fair_share)
        # An explicit budget larger than the whole pool is still honored —
        # profiles must never depend on server sizing — but it overcommits
        # the pool, so it waits for exclusive use and makes everyone else
        # wait for its pages to come back.
        overcommit = guarantee > self.total_pages
        lease = SessionLease(label, requested, guarantee)
        deadline = monotonic() + self.timeout_s
        with self._cond:
            while True:
                reclaimable = sum(
                    max(0, other.granted_pages - other.reclaim_floor())
                    for other in self._leases
                )
                if overcommit:
                    if not self._leases:
                        break
                elif self.free_pages() + reclaimable >= guarantee:
                    break
                remaining = deadline - monotonic()
                if remaining <= 0:
                    self._bump("broker.timeouts")
                    raise AdmissionError(
                        f"statement {label!r} timed out waiting for "
                        f"{guarantee} pages (pool={self.total_pages}, "
                        f"granted={self.granted_pages()})"
                    )
                self._bump("broker.waits")
                self._cond.wait(remaining)
            if overcommit:
                grant = requested
                self._bump("broker.overcommits")
            elif self.policy == "static" and not explicit:
                grant = guarantee
            else:
                shortfall = guarantee - self.free_pages()
                if shortfall > 0:
                    self._reclaim(shortfall)
                grant = min(requested, max(guarantee, self.free_pages()))
            lease.apply_grant(grant)
            lease.regrants = 0  # the initial grant is not a re-grant
            self._leases.append(lease)
            self._bump("broker.leases")
            self._observe_pages("broker.grant_pages", grant)
            self._set_gauges()
        return lease

    def release(self, lease: SessionLease) -> None:
        """Return a lease's pages and re-grant them to running statements."""
        with self._cond:
            if lease in self._leases:
                self._leases.remove(lease)
                lease.granted_pages = 0
                if self.policy != "static":
                    self._redistribute()
            self._set_gauges()
            self._cond.notify_all()

    def _reclaim(self, needed: int) -> None:
        """Shrink borrowed headroom, youngest lease first (under the lock)."""
        for other in reversed(self._leases):
            if needed <= 0:
                break
            floor = other.reclaim_floor()
            headroom = other.granted_pages - floor
            if headroom <= 0:
                continue
            target = max(floor, other.granted_pages - needed)
            before = other.granted_pages
            actual = other.apply_grant(target)
            taken = before - actual
            if taken > 0:
                needed -= taken
                self._bump("broker.reclaims")
                self._observe_pages("broker.reclaim_pages", taken)

    def _redistribute(self) -> None:
        """Top freed pages back up to running leases, arrival order."""
        for other in self._leases:
            free = self.free_pages()
            if free <= 0:
                break
            deficit = other.requested_pages - other.granted_pages
            if deficit <= 0:
                continue
            topped_up = min(free, deficit)
            other.apply_grant(other.granted_pages + topped_up)
            self._bump("broker.regrants")
            self._observe_pages("broker.regrant_pages", topped_up)

    def _bump(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _observe_pages(self, name: str, pages: int) -> None:
        """Histogram a grant/reclaim/re-grant size (page-scale buckets, so
        the distribution of lease resizes is visible on the metrics page
        next to the existing ``server.admission_wait_s`` latency)."""
        if self._metrics is not None:
            self._metrics.histogram(name, buckets=_PAGE_BUCKETS).observe(pages)

    def _set_gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("broker.leases_active").set(len(self._leases))
            self._metrics.gauge("broker.free_pages").set(self.free_pages())


class AdmissionController:
    """Bounded priority-queue admission: at most ``max_active`` statements
    run; up to ``queue_size`` more wait (higher ``priority`` first, FIFO
    within a level); everyone else is refused immediately."""

    def __init__(
        self,
        max_active: int,
        queue_size: int,
        timeout_s: float,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.max_active = max(1, max_active)
        self.queue_size = max(0, queue_size)
        self.timeout_s = timeout_s
        self._metrics = metrics
        self._cond = threading.Condition()
        self._active = 0
        self._waiting: list[tuple[int, int]] = []  # heap of (-priority, seq)
        self._seq = itertools.count()

    def admit(self, priority: int = 0) -> tuple[float, int]:
        """Block until admitted; returns (wait_seconds, queue_depth_on_arrival)."""
        t0 = perf_counter()
        with self._cond:
            if self._active >= self.max_active and len(self._waiting) >= self.queue_size:
                self._bump("server.rejected")
                raise AdmissionError(
                    f"admission queue full ({len(self._waiting)} waiting, "
                    f"{self._active} active)"
                )
            depth = len(self._waiting)
            ticket = (-priority, next(self._seq))
            heapq.heappush(self._waiting, ticket)
            self._set_gauges()
            deadline = monotonic() + self.timeout_s
            try:
                while not (
                    self._active < self.max_active and self._waiting[0] == ticket
                ):
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        self._bump("server.admission_timeouts")
                        raise AdmissionError(
                            f"statement timed out after {self.timeout_s:.1f}s "
                            f"in the admission queue"
                        )
                    self._cond.wait(remaining)
            except BaseException:
                self._waiting.remove(ticket)
                heapq.heapify(self._waiting)
                self._set_gauges()
                self._cond.notify_all()
                raise
            heapq.heappop(self._waiting)
            self._active += 1
            self._bump("server.admitted")
            self._set_gauges()
            # Wake the next head: slots may still be free.
            self._cond.notify_all()
        wait_s = perf_counter() - t0
        if self._metrics is not None:
            self._metrics.histogram("server.admission_wait_s").observe(wait_s)
        return wait_s, depth

    def leave(self) -> None:
        """Release an admission slot."""
        with self._cond:
            self._active -= 1
            self._set_gauges()
            self._cond.notify_all()

    def _bump(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _set_gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("server.sessions_active").set(self._active)
            self._metrics.gauge("server.queue_depth").set(len(self._waiting))


def _forked_statement_worker(conn, database, catalog, scope, call) -> None:
    """Child-process body for ``worker_mode="fork"``: run one statement
    against the inherited engine state and pickle the result back.

    Runs with freshly re-initialized locks (``repro.concurrency``'s
    at-fork hook) and a private copy of every structure, so nothing it does
    is visible to — or racing with — the parent."""
    try:
        prepared = database._prepare(
            call["sql"],
            ast=call["ast"],
            params=call["params"],
            mode=call["mode"],
            execution_mode=call["execution_mode"],
            workers=call["workers"],
            parametric=call["parametric"],
            catalog=catalog,
            cache_scope=scope,
        )
        result = database._run(
            prepared,
            call["sql"],
            call["mode"],
            memory_budget_pages=call["budget_pages"],
            execution_mode=call["execution_mode"],
            workers=call["workers"],
            catalog=catalog,
            session_label=call["label"],
            admission_wait_s=call["admission_wait_s"],
            admission_queue_depth=call["queue_depth"],
            executed_via="fork",
        )
        result.profile.memory_requested_pages = call["requested_pages"]
        result.profile.memory_granted_pages = call["budget_pages"]
        # Tracers hold live engine objects; keep the payload picklable.
        result.profile.trace = None
        try:
            conn.send(("ok", result))
        except Exception:
            result.profile.events = []
            conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        try:
            conn.send(("error", exc))
        except Exception:
            conn.send(("error", RuntimeError(repr(exc))))
    finally:
        conn.close()


class QueryServer:
    """Runs concurrent statements against one shared :class:`Database`."""

    def __init__(self, database: "Database") -> None:
        self.database = database
        config = database.config
        self.worker_mode = config.server_worker_mode
        if self.worker_mode == "fork" and not hasattr(os, "fork"):
            warnings.warn(
                "server_worker_mode='fork' is unavailable on this platform; "
                "falling back to threads",
                RuntimeWarning,
                stacklevel=2,
            )
            self.worker_mode = "thread"
        self.broker = GlobalMemoryBroker(
            total_pages=config.resolved_server_memory_pages,
            max_sessions=config.max_sessions,
            policy=config.session_memory_policy,
            metrics=database.metrics,
            timeout_s=config.admission_timeout_s,
        )
        self.admission = AdmissionController(
            max_active=config.max_sessions,
            queue_size=config.admission_queue_size,
            timeout_s=config.admission_timeout_s,
            metrics=database.metrics,
        )

    def session(self, name: str | None = None) -> Session:
        """Open a new session (its own temp namespace and cache scope)."""
        return Session(self, name)

    def execute(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        memory_budget_pages: int | None = None,
        parametric: bool = False,
        execution_mode: str | None = None,
        workers: int | None = None,
        priority: int = 0,
    ) -> "QueryResult":
        """One-shot execution without a long-lived session.

        Still fully admission-controlled and brokered; temp tables the
        re-optimizer materializes mid-query live in a per-call catalog
        overlay, so concurrent one-shot statements cannot collide on
        ``__temp_N`` names."""
        return self._execute(
            session=None,
            sql=sql,
            params=params,
            mode=mode,
            memory_budget_pages=memory_budget_pages,
            parametric=parametric,
            execution_mode=execution_mode,
            workers=workers,
            priority=priority,
        )

    def _execute(
        self,
        session: Session | None,
        sql: str,
        ast: "AstSelect | None" = None,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        memory_budget_pages: int | None = None,
        parametric: bool = False,
        execution_mode: str | None = None,
        workers: int | None = None,
        priority: int = 0,
    ) -> "QueryResult":
        db = self.database
        label = session.name if session is not None else "adhoc"
        scope = session.scope if session is not None else ""
        catalog = (
            session.catalog if session is not None else SessionCatalog(db.catalog)
        )
        wait_s, depth = self.admission.admit(priority)
        try:
            explicit = memory_budget_pages is not None
            requested = (
                memory_budget_pages
                if explicit
                else db.config.query_memory_pages
            )
            lease = self.broker.acquire(label, requested, explicit=explicit)
            try:
                if self.worker_mode == "fork":
                    return self._run_forked(
                        catalog, scope, label, lease, wait_s, depth,
                        sql, ast, params, mode, parametric,
                        execution_mode, workers,
                    )
                return self._run_threaded(
                    catalog, scope, label, lease, wait_s, depth,
                    sql, ast, params, mode, parametric,
                    execution_mode, workers,
                )
            finally:
                self.broker.release(lease)
        finally:
            self.admission.leave()
            if db.metrics is not None:
                db.metrics.counter("server.statements").inc()

    def _run_threaded(
        self, catalog, scope, label, lease, wait_s, depth,
        sql, ast, params, mode, parametric, execution_mode, workers,
    ) -> "QueryResult":
        db = self.database
        prepared = db._prepare(
            sql,
            ast=ast,
            params=params,
            mode=mode,
            execution_mode=execution_mode,
            workers=workers,
            parametric=parametric,
            catalog=catalog,
            cache_scope=scope,
        )
        return db._run(
            prepared,
            sql,
            mode,
            execution_mode=execution_mode,
            workers=workers,
            catalog=catalog,
            lease=lease,
            session_label=label,
            admission_wait_s=wait_s,
            admission_queue_depth=depth,
            executed_via="thread",
        )

    def _run_forked(
        self, catalog, scope, label, lease, wait_s, depth,
        sql, ast, params, mode, parametric, execution_mode, workers,
    ) -> "QueryResult":
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        call = {
            "sql": sql,
            "ast": ast,
            "params": params,
            "mode": mode,
            "parametric": parametric,
            "execution_mode": execution_mode,
            "workers": workers,
            "label": label,
            "admission_wait_s": wait_s,
            "queue_depth": depth,
            # The lease is fixed at admission in fork mode: the child's
            # memory is private, so mid-query re-grants cannot reach it.
            "budget_pages": lease.granted_pages,
            "requested_pages": lease.requested_pages,
        }
        proc = ctx.Process(
            target=_forked_statement_worker,
            args=(child_conn, self.database, catalog, scope, call),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        try:
            status, payload = parent_conn.recv()  # releases the GIL
        except EOFError:
            proc.join()
            raise AdmissionError(
                f"forked statement worker for {label!r} died "
                f"(exit code {proc.exitcode})"
            )
        finally:
            parent_conn.close()
            proc.join()
        if self.database.metrics is not None:
            self.database.metrics.counter("server.fork_statements").inc()
        if status == "error":
            raise payload
        return payload
