"""Execution profiles: what one query execution cost and what happened.

The profile is the experiment currency of this reproduction: benchmarks run
a query under different :class:`~repro.core.modes.DynamicMode` settings and
compare ``total_cost`` (simulated time) plus the event log (re-allocations,
plan switches, collector overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.reoptimizer import ReoptimizationEvent
from ..storage.buffer import BufferStats
from ..storage.disk import CostBreakdown


@dataclass
class ExecutionProfile:
    """Cost accounting and event history for one executed query."""

    sql: str
    mode: str
    total_cost: float
    breakdown: CostBreakdown
    buffer: BufferStats
    row_count: int
    optimizer_invocations: int
    plan_switches: int
    memory_reallocations: int
    initial_estimated_cost: float
    collectors_inserted: int
    statistics_kept: int
    statistics_dropped: int
    statistics_budget: float
    #: Parametric-plan bookkeeping (section 4 hybrid): how many scenario
    #: plans existed and which was chosen (empty when not used).
    parametric_plan_count: int = 0
    parametric_choice: str = ""
    events: list[ReoptimizationEvent] = field(default_factory=list)
    plan_explanations: list[str] = field(default_factory=list)
    remainder_sqls: list[str] = field(default_factory=list)

    @property
    def stats_overhead_fraction(self) -> float:
        """Observed statistics-collection overhead as a fraction of total."""
        if self.total_cost <= 0:
            return 0.0
        return self.breakdown.stats_cpu / self.total_cost

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"mode={self.mode} total={self.total_cost:.1f} "
            f"(io={self.breakdown.io:.1f}, cpu={self.breakdown.cpu:.1f}, "
            f"stats={self.breakdown.stats_cpu:.1f}, opt={self.breakdown.optimizer:.1f})",
            f"rows={self.row_count} switches={self.plan_switches} "
            f"reallocations={self.memory_reallocations} "
            f"collectors={self.collectors_inserted} "
            f"stats kept/dropped={self.statistics_kept}/{self.statistics_dropped}",
        ]
        for event in self.events:
            lines.append(f"  event: {event.action} at t={event.clock_time:.1f} {event.detail}")
        return "\n".join(lines)
