"""Execution profiles: what one query execution cost and what happened.

The profile is the experiment currency of this reproduction: benchmarks run
a query under different :class:`~repro.core.modes.DynamicMode` settings and
compare ``total_cost`` (simulated time) plus the event log (re-allocations,
plan switches, collector overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.reoptimizer import ReoptimizationEvent
from ..storage.buffer import BufferStats
from ..storage.disk import CostBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observe.trace import QueryTracer


@dataclass(frozen=True)
class PhaseBreakdown:
    """Real (wall-clock) seconds spent in each phase of one execution.

    Unlike every other field of the profile — which reports the *simulated*
    cost clock — these are ``time.perf_counter`` measurements.  They exist
    to make compile-time overhead visible: after PR 1's batch executor,
    complex queries spend several times longer in parse/bind/optimize/SCIA
    than in actual execution, which is exactly what the plan cache and
    prepared statements eliminate on warm paths.
    """

    parse_s: float = 0.0
    bind_s: float = 0.0
    optimize_s: float = 0.0
    scia_s: float = 0.0
    execute_s: float = 0.0

    @property
    def compile_s(self) -> float:
        """Everything before execution starts."""
        return self.parse_s + self.bind_s + self.optimize_s + self.scia_s

    @property
    def total_s(self) -> float:
        """End-to-end wall-clock seconds."""
        return self.compile_s + self.execute_s

    def as_dict(self) -> dict[str, float]:
        """Plain dict for JSON benchmark documents."""
        return {
            "parse_s": self.parse_s,
            "bind_s": self.bind_s,
            "optimize_s": self.optimize_s,
            "scia_s": self.scia_s,
            "execute_s": self.execute_s,
        }


@dataclass
class ExecutionProfile:
    """Cost accounting and event history for one executed query."""

    sql: str
    mode: str
    total_cost: float
    breakdown: CostBreakdown
    buffer: BufferStats
    row_count: int
    optimizer_invocations: int
    plan_switches: int
    memory_reallocations: int
    initial_estimated_cost: float
    collectors_inserted: int
    statistics_kept: int
    statistics_dropped: int
    statistics_budget: float
    #: Parametric-plan bookkeeping (section 4 hybrid): how many scenario
    #: plans existed and which was chosen (empty when not used).
    parametric_plan_count: int = 0
    parametric_choice: str = ""
    #: Wall-clock per-phase breakdown (parse/bind/optimize/scia/execute).
    phases: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    #: Whether the plan (or scenario set) was served from the plan cache.
    plan_cache_hit: bool = False
    #: Morsel-parallel execution telemetry (``execution_mode="parallel"``;
    #: all zero/empty otherwise).  ``workers`` is the largest pool used by
    #: any pipeline, ``morsels`` the total morsels executed,
    #: ``parallel_pipelines`` how many pipelines fanned out (of which
    #: ``parallel_join_pipelines`` were probe-side hash joins and
    #: ``parallel_preagg_pipelines`` pre-aggregated in the workers), and
    #: ``pipeline_wall_s`` maps pipeline id (``"1"``.. in execution order)
    #: to per-worker-pid busy wall-clock seconds — wall-clock observations
    #: only, never part of the simulated cost.  ``parallel_rows_shipped``
    #: counts rows pickled from workers to the merge point;
    #: ``parallel_rows_preaggregated`` counts pipeline-output rows folded
    #: into worker-side partials instead of being shipped.
    workers: int = 0
    morsels: int = 0
    parallel_pipelines: int = 0
    parallel_join_pipelines: int = 0
    parallel_preagg_pipelines: int = 0
    parallel_rows_shipped: int = 0
    parallel_rows_preaggregated: int = 0
    parallel_prefetched_morsels: int = 0
    #: Plan-wide parallelism telemetry: hash-join build-side pipelines,
    #: parallel-sort pipelines and the sorted runs their loser trees
    #: merged, plus partitioned-spill counters (rows/morsels that travelled
    #: through per-partition spill files, and how many distinct partitions
    #: spilled at least once).  Spill counters are transport observations:
    #: simulated costs never depend on them.
    parallel_build_pipelines: int = 0
    parallel_sort_pipelines: int = 0
    sort_runs_merged: int = 0
    rows_spilled: int = 0
    morsels_spilled: int = 0
    partitions_spilled: int = 0
    pipeline_wall_s: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Columnar execution telemetry (``execution_mode="columnar"``; all
    #: zero/empty otherwise).  ``zone_map_skips`` counts page groups proven
    #: empty by zone maps and skipped whole; ``zone_map_groups_read`` the
    #: groups whose arrays were evaluated; ``zone_map_pages_skipped`` the
    #: pages inside skipped groups; ``columnar_pipelines`` how many leaf
    #: pipelines ran in column space (``columnar_keyed_pipelines`` of them
    #: feeding join-probe/aggregate key extraction).  ``zone_map_by_scan``
    #: breaks skips down per scan (keyed by scan node id).
    columnar_pipelines: int = 0
    columnar_keyed_pipelines: int = 0
    #: Columnar pipelines whose kernels ran inside forked morsel workers
    #: (``columnar_parallel``).
    columnar_parallel_pipelines: int = 0
    zone_map_skips: int = 0
    zone_map_groups_read: int = 0
    zone_map_pages_skipped: int = 0
    zone_map_rows_skipped: int = 0
    zone_map_by_scan: dict[int, dict] = field(default_factory=dict)
    #: Vectorized-kernel telemetry (``vectorized_agg``/``vectorized_probe``;
    #: all zero otherwise).  ``vectorized_agg_pipelines`` counts aggregates
    #: folded by the NumPy group-by kernels (columnar pipelines and parallel
    #: value-run pre-aggregations alike), ``vectorized_probe_pipelines``
    #: join probes served by the searchsorted kernel, and ``rows_folded``
    #: the input rows those aggregate folds consumed.
    vectorized_agg_pipelines: int = 0
    vectorized_probe_pipelines: int = 0
    rows_folded: int = 0
    #: Concurrent-server telemetry (label fields empty and wait/broker
    #: counters zero for inline executions; the memory fields always record
    #: the budget the query actually ran under).
    #: ``session`` is the owning session's label, ``executed_via`` how the
    #: statement ran (``"inline"``, ``"thread"`` or ``"fork"``),
    #: ``admission_wait_s`` how long admission control parked it and
    #: ``queue_depth_at_admission`` how many statements were waiting when it
    #: arrived.  ``memory_requested_pages``/``memory_granted_pages`` record
    #: the broker lease, and ``broker_regrants``/``broker_reclaims`` how
    #: many times the broker grew or shrank that lease mid-query — each
    #: re-grant is exactly the cross-query pressure the paper's memory
    #: re-allocation trigger (section 2.3) responds to.
    session: str = ""
    executed_via: str = "inline"
    admission_wait_s: float = 0.0
    queue_depth_at_admission: int = 0
    memory_requested_pages: int = 0
    memory_granted_pages: int = 0
    broker_regrants: int = 0
    broker_reclaims: int = 0
    #: Feedback-repository telemetry (all zero/empty when the repository is
    #: disabled).  ``feedback_corrections`` counts plan nodes whose estimate
    #: this execution ran with a feedback-corrected cardinality;
    #: ``feedback_records`` how many fragment observations the execution
    #: wrote back at query end, with ``feedback_worst_q_error``/
    #: ``feedback_worst_fragment`` naming the worst of them.
    feedback_corrections: int = 0
    feedback_records: int = 0
    feedback_worst_q_error: float = 0.0
    feedback_worst_fragment: str = ""
    events: list[ReoptimizationEvent] = field(default_factory=list)
    plan_explanations: list[str] = field(default_factory=list)
    remainder_sqls: list[str] = field(default_factory=list)
    #: The query's span trace when tracing was enabled
    #: (``EngineConfig.tracing`` / ``REPRO_TRACE=1``), else ``None``.
    #: Export with ``profile.trace.export_chrome(path)`` or render with
    #: ``profile.trace.timeline()``.
    trace: "QueryTracer | None" = None

    @property
    def worker_wall_s(self) -> dict[str, float]:
        """Busy wall-clock seconds per worker pid, across all pipelines.

        Backwards-compatible aggregate of :attr:`pipeline_wall_s`, which
        earlier versions stored directly (then covering leaf pipelines
        only, the sole parallel pipeline shape at the time).
        """
        totals: dict[str, float] = {}
        for per_worker in self.pipeline_wall_s.values():
            for pid, seconds in per_worker.items():
                totals[pid] = totals.get(pid, 0.0) + seconds
        # Round once after summation: rounding inside the loop would make
        # the totals depend on pipeline iteration order and drop sub-1e-6
        # contributions entirely.
        return {pid: round(total, 6) for pid, total in totals.items()}

    @property
    def stats_overhead_fraction(self) -> float:
        """Observed statistics-collection overhead as a fraction of total."""
        if self.total_cost <= 0:
            return 0.0
        return self.breakdown.stats_cpu / self.total_cost

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"mode={self.mode} total={self.total_cost:.1f} "
            f"(io={self.breakdown.io:.1f}, cpu={self.breakdown.cpu:.1f}, "
            f"stats={self.breakdown.stats_cpu:.1f}, opt={self.breakdown.optimizer:.1f})",
            f"rows={self.row_count} switches={self.plan_switches} "
            f"reallocations={self.memory_reallocations} "
            f"collectors={self.collectors_inserted} "
            f"stats kept/dropped={self.statistics_kept}/{self.statistics_dropped}",
            f"wall: compile={self.phases.compile_s * 1e3:.2f}ms "
            f"(parse={self.phases.parse_s * 1e3:.2f}, bind={self.phases.bind_s * 1e3:.2f}, "
            f"optimize={self.phases.optimize_s * 1e3:.2f}, scia={self.phases.scia_s * 1e3:.2f}) "
            f"execute={self.phases.execute_s * 1e3:.2f}ms "
            f"cache={'hit' if self.plan_cache_hit else 'miss'}",
        ]
        if self.parallel_pipelines:
            lines.append(
                f"parallel: workers={self.workers} morsels={self.morsels} "
                f"pipelines={self.parallel_pipelines} "
                f"(join={self.parallel_join_pipelines}, "
                f"preagg={self.parallel_preagg_pipelines}, "
                f"build={self.parallel_build_pipelines}, "
                f"sort={self.parallel_sort_pipelines}) "
                f"rows shipped/preaggregated="
                f"{self.parallel_rows_shipped}/{self.parallel_rows_preaggregated} "
                f"prefetched={self.parallel_prefetched_morsels} "
                f"spilled={self.rows_spilled} rows/"
                f"{self.partitions_spilled} partitions "
                f"sort runs merged={self.sort_runs_merged}"
            )
        if self.columnar_pipelines:
            lines.append(
                f"columnar: pipelines={self.columnar_pipelines} "
                f"(keyed={self.columnar_keyed_pipelines}, "
                f"parallel={self.columnar_parallel_pipelines}) "
                f"groups read/skipped="
                f"{self.zone_map_groups_read}/{self.zone_map_skips} "
                f"pages skipped={self.zone_map_pages_skipped} "
                f"rows skipped={self.zone_map_rows_skipped}"
            )
        if self.vectorized_agg_pipelines or self.vectorized_probe_pipelines:
            lines.append(
                f"vectorized: agg pipelines={self.vectorized_agg_pipelines} "
                f"probe pipelines={self.vectorized_probe_pipelines} "
                f"rows folded={self.rows_folded}"
            )
        if self.feedback_corrections or self.feedback_records:
            lines.append(
                f"feedback: corrections={self.feedback_corrections} "
                f"records={self.feedback_records} "
                f"worst q-error={self.feedback_worst_q_error:.2f}"
                + (
                    f" on {self.feedback_worst_fragment}"
                    if self.feedback_worst_fragment
                    else ""
                )
            )
        if self.session or self.executed_via != "inline":
            lines.append(
                f"server: session={self.session or '-'} via={self.executed_via} "
                f"admission wait={self.admission_wait_s * 1e3:.2f}ms "
                f"queue depth={self.queue_depth_at_admission} "
                f"memory granted/requested="
                f"{self.memory_granted_pages}/{self.memory_requested_pages} "
                f"regrants={self.broker_regrants} reclaims={self.broker_reclaims}"
            )
        for event in self.events:
            lines.append(f"  event: {event.action} at t={event.clock_time:.1f} {event.detail}")
        return "\n".join(lines)
