"""Prepared statements: parse once, optimize once, execute many times.

A :class:`PreparedStatement` is the client-facing handle over the plan
cache.  ``prepare()`` parses the SQL eagerly (syntax errors surface at
prepare time, like a real database); every ``execute()`` then reuses the
stored AST and goes through :meth:`Database._prepare`, which serves the
optimized plan — or, for host-variable statements, the parametric scenario
set — from the statistics-epoch plan cache.  The first execution pays the
full optimization cost and populates the cache; later executions with the
same (or, parametrically, any) parameter values pay only a cheap clone and
``choose_plan`` selection, while a statistics-epoch bump (ANALYZE, loads,
index DDL, re-optimization feedback) transparently forces re-optimization.

Results are identical to cold :meth:`Database.execute` calls in both row
and batch execution modes: the simulated cost clock is still charged one
calibrated optimization per execution, so profiles stay deterministic and
only wall-clock latency improves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..core.modes import DynamicMode
from ..plans.printer import explain as explain_plan
from ..sql.parser import parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .database import Database
    from .results import QueryResult


class PreparedStatement:
    """A reusable handle for one SQL statement against one database."""

    def __init__(self, database: "Database", sql: str) -> None:
        self._database = database
        self.sql = sql
        #: Parsed once at prepare time; re-executions skip the parser.
        self.ast = parse(sql)
        #: Number of completed ``execute()`` calls on this handle.
        self.executions = 0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"PreparedStatement({self.sql!r}, executions={self.executions})"

    def execute(
        self,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        memory_budget_pages: int | None = None,
        execution_mode: str | None = None,
        workers: int | None = None,
        parametric: bool = True,
    ) -> "QueryResult":
        """Run the statement, reusing cached optimization products.

        ``parametric`` (default on, unlike ad-hoc ``execute``) lets
        host-variable statements share one cached scenario set across all
        parameter bindings; statements without host variables are unaffected
        by the flag.  All other arguments match :meth:`Database.execute`.
        """
        result = self._database._execute_prepared(
            sql=self.sql,
            ast=self.ast,
            params=params,
            mode=mode,
            memory_budget_pages=memory_budget_pages,
            parametric=parametric,
            execution_mode=execution_mode,
            workers=workers,
        )
        self.executions += 1
        return result

    def explain(
        self,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        parametric: bool = True,
    ) -> str:
        """EXPLAIN for this statement — the same plan ``execute`` would run."""
        prepared = self._database._prepare(
            sql=self.sql,
            ast=self.ast,
            params=params,
            mode=mode,
            execution_mode=None,
            parametric=parametric,
            use_cache=True,
        )
        return explain_plan(prepared.plan)
