"""Sessions: per-client state on top of one shared :class:`Database`.

A :class:`Session` is what one client of the concurrent query server holds:
its own temp-table namespace, its own prepared-statement handles, and a
plan-cache *scope* so plans compiled against session-local tables are never
served to another session.  Statements submitted through a session flow
through the server's admission controller and memory broker
(:mod:`repro.engine.server`).

Isolation is implemented by :class:`SessionCatalog`, a resolve-local-first
overlay over the shared catalog.  The overlay *is* the ``ctx.catalog`` a
session's executions run under, so everything downstream — binding, scan
resolution, statistics lookup, and crucially the per-execution ``__temp_N``
tables the mid-query re-optimizer materializes (paper Figure 6) — lands in
the session's namespace without any executor changes.  Two sessions can
both hold a temp table named ``t`` (or two concurrent re-optimizations can
both materialize ``__temp_1``) and never observe each other's rows.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from ..core.modes import DynamicMode
from ..errors import SessionError
from ..stats.histogram import HistogramKind
from ..stats.table_stats import TableStats
from ..storage.catalog import Catalog, TableEntry
from ..storage.index import Index
from ..storage.schema import Schema
from ..storage.table import Row, Table
from .prepared import PreparedStatement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql.ast import AstSelect
    from .results import QueryResult
    from .server import QueryServer

_session_ids = itertools.count(1)


class SessionCatalog:
    """A local-first overlay over the shared catalog.

    Temporary registrations (session temp tables, the re-optimizer's
    ``__temp_N`` materializations) go to a private :class:`Catalog`; every
    lookup tries the private catalog first and falls back to the shared
    one.  Persistent DDL passes straight through to the shared catalog, so
    sessions see each other's permanent tables immediately.

    The overlay keeps its own statistics epoch for local DDL.  For global
    statements :attr:`stats_epoch` is exactly the shared epoch (so plan
    cache entries stay shared across sessions); statements that touch local
    tables are cached under :attr:`scoped_epoch`, which pairs the shared
    epoch with the local one — recreating a same-named temp table with
    different data can then never revive a stale plan.
    """

    def __init__(self, base: Catalog) -> None:
        self.base = base
        self._local = Catalog(base.page_size)

    # -- resolution -------------------------------------------------------

    def has_local(self, name: str) -> bool:
        """Whether ``name`` resolves to a session-local table."""
        return name in self._local

    @property
    def page_size(self) -> int:
        return self.base.page_size

    @property
    def stats_epoch(self) -> int:
        """The shared epoch (local DDL deliberately excluded)."""
        return self.base.stats_epoch

    @property
    def scoped_epoch(self) -> tuple[int, int]:
        """(shared, local) epoch pair for session-scoped cache entries."""
        return (self.base.stats_epoch, self._local.stats_epoch)

    def bump_stats_epoch(self) -> int:
        return self.base.bump_stats_epoch()

    def __contains__(self, name: str) -> bool:
        return name in self._local or name in self.base

    def __iter__(self) -> Iterator[TableEntry]:
        yield from self._local
        yield from self.base

    @property
    def table_names(self) -> list[str]:
        return self._local.table_names + self.base.table_names

    # -- tables -----------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        key_columns: Sequence[str] = (),
        is_temporary: bool = False,
    ) -> Table:
        if is_temporary:
            table = self._local.create_table(
                name, schema, key_columns=key_columns, is_temporary=True
            )
            self._local.bump_stats_epoch()
            return table
        return self.base.create_table(name, schema, key_columns=key_columns)

    def register_table(self, table: Table, key_columns: Sequence[str] = ()) -> TableEntry:
        if table.is_temporary:
            entry = self._local.register_table(table, key_columns=key_columns)
            self._local.bump_stats_epoch()
            return entry
        return self.base.register_table(table, key_columns=key_columns)

    def drop_table(self, name: str) -> None:
        if name in self._local:
            self._local.drop_table(name)
            self._local.bump_stats_epoch()
            return
        self.base.drop_table(name)

    def drop_local_tables(self) -> None:
        """Drop every session-local table (session close)."""
        for name in self._local.table_names:
            self._local.drop_table(name)
        self._local.bump_stats_epoch()

    def entry(self, name: str) -> TableEntry:
        if name in self._local:
            return self._local.entry(name)
        return self.base.entry(name)

    def table(self, name: str) -> Table:
        return self.entry(name).table

    # -- statistics -------------------------------------------------------

    def analyze(
        self,
        name: str,
        histogram_kind: HistogramKind | None = HistogramKind.MAXDIFF,
        num_buckets: int = 32,
        histogram_columns: Sequence[str] | None = None,
    ) -> TableStats:
        if name in self._local:
            stats = self._local.analyze(
                name,
                histogram_kind=histogram_kind,
                num_buckets=num_buckets,
                histogram_columns=histogram_columns,
            )
            # Local tables are temporary, so the nested catalog will not
            # bump its epoch on its own; fresh stats must still invalidate
            # this session's scoped plan-cache entries.
            self._local.bump_stats_epoch()
            return stats
        return self.base.analyze(
            name,
            histogram_kind=histogram_kind,
            num_buckets=num_buckets,
            histogram_columns=histogram_columns,
        )

    def set_stats(self, name: str, stats: TableStats) -> None:
        if name in self._local:
            self._local.set_stats(name, stats)
            self._local.bump_stats_epoch()
            return
        self.base.set_stats(name, stats)

    def stats_for(self, name: str) -> TableStats:
        if name in self._local:
            return self._local.stats_for(name)
        return self.base.stats_for(name)

    # -- indexes ----------------------------------------------------------

    def create_index(
        self, index_name: str, table_name: str, column: str, clustered: bool = False
    ) -> Index:
        target = self._local if table_name in self._local else self.base
        return target.create_index(index_name, table_name, column, clustered=clustered)

    def index_on(self, table_name: str, column: str) -> Index | None:
        if table_name in self._local:
            return self._local.index_on(table_name, column)
        return self.base.index_on(table_name, column)

    def indexes_for(self, table_name: str) -> Iterable[Index]:
        if table_name in self._local:
            return self._local.indexes_for(table_name)
        return self.base.indexes_for(table_name)

    def is_key_column(self, table_name: str, column: str) -> bool:
        if table_name in self._local:
            return self._local.is_key_column(table_name, column)
        return self.base.is_key_column(table_name, column)


class Session:
    """One client's handle on the concurrent query server.

    Sessions are single-statement at a time: one thread per session is the
    intended shape (the workload driver gives every simulated client its
    own), and a second concurrent statement on the same session raises
    :class:`~repro.errors.SessionError` instead of silently interleaving
    temp-table state.  Statements execute through the server's admission
    queue and memory broker; results and profiles are byte-identical to
    inline execution when the server is uncontended.
    """

    def __init__(self, server: "QueryServer", name: str | None = None) -> None:
        self._server = server
        self._database = server.database
        sid = next(_session_ids)
        self.name = name or f"session-{sid}"
        #: Plan-cache scope: unique per session object, so same-named
        #: sessions can never cross-serve temp-table plans.
        self.scope = f"{self.name}#{sid}"
        self.catalog = SessionCatalog(self._database.catalog)
        self.closed = False
        self._statement_lock = threading.Lock()

    # -- session-local DDL ------------------------------------------------

    def create_temp_table(
        self, name: str, columns, key: Sequence[str] = ()
    ) -> Table:
        """Create a session-local (temporary) table.

        Accepts the same column specs as :meth:`Database.create_table`; the
        table is visible only to this session and dropped on close.
        """
        self._check_open()
        from .database import Database  # local import: cycle guard

        schema = Database._schema_from_columns(columns)
        return self.catalog.create_table(
            name, schema, key_columns=key, is_temporary=True
        )

    def load_rows(self, table_name: str, rows: Iterable[Row]) -> int:
        """Bulk-load rows into a session-local or shared table."""
        self._check_open()
        if self.catalog.has_local(table_name):
            count = self.catalog.table(table_name).append_rows(rows)
            for index in self.catalog.indexes_for(table_name):
                index.rebuild()
            self.catalog._local.bump_stats_epoch()
            return count
        return self._database.load_rows(table_name, rows)

    def analyze(self, table_name: str, **kwargs) -> None:
        """ANALYZE one table (session-local tables stay local)."""
        self._check_open()
        self.catalog.analyze(table_name, **kwargs)

    def drop_table(self, name: str) -> None:
        """Drop a session-local or shared table."""
        self._check_open()
        self.catalog.drop_table(name)

    # -- statements -------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Mapping[str, object] | None = None,
        mode: DynamicMode = DynamicMode.FULL,
        memory_budget_pages: int | None = None,
        parametric: bool = False,
        execution_mode: str | None = None,
        workers: int | None = None,
        priority: int = 0,
    ) -> "QueryResult":
        """Execute a statement through admission control and the broker."""
        self._check_open()
        with self._statement_guard():
            return self._server._execute(
                session=self,
                sql=sql,
                params=params,
                mode=mode,
                memory_budget_pages=memory_budget_pages,
                parametric=parametric,
                execution_mode=execution_mode,
                workers=workers,
                priority=priority,
            )

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare a statement scoped to this session.

        The handle is session-local: executions run through this session's
        admission/broker path and its catalog overlay, and cached plans for
        temp-table statements carry this session's scope.
        """
        self._check_open()
        return PreparedStatement(self, sql)

    # PreparedStatement duck-types its ``database``; delegate the two entry
    # points it uses, injecting this session's catalog/scope/server path.

    def _prepare(self, sql: str, **kwargs):
        self._check_open()
        return self._database._prepare(
            sql, catalog=self.catalog, cache_scope=self.scope, **kwargs
        )

    def _execute_prepared(
        self,
        sql: str,
        ast: "AstSelect",
        params: Mapping[str, object] | None,
        mode: DynamicMode,
        memory_budget_pages: int | None,
        parametric: bool,
        execution_mode: str | None,
        workers: int | None = None,
    ) -> "QueryResult":
        self._check_open()
        with self._statement_guard():
            return self._server._execute(
                session=self,
                sql=sql,
                ast=ast,
                params=params,
                mode=mode,
                memory_budget_pages=memory_budget_pages,
                parametric=parametric,
                execution_mode=execution_mode,
                workers=workers,
            )

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Drop session-local state (temp tables, scoped plan-cache entries)."""
        if self.closed:
            return
        self.closed = True
        self.catalog.drop_local_tables()
        self._database.plan_cache.drop_scope(self.scope)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise SessionError(f"session {self.name!r} is closed")

    def _statement_guard(self):
        if not self._statement_lock.acquire(blocking=False):
            raise SessionError(
                f"session {self.name!r} already has a statement in flight; "
                "sessions execute one statement at a time"
            )
        lock = self._statement_lock

        class _Guard:
            def __enter__(self_inner):
                return self_inner

            def __exit__(self_inner, *exc):
                lock.release()

        return _Guard()
