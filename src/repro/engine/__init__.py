"""Engine facade: the public Database API."""

from .database import Database
from .plan_cache import PlanCache, PlanCacheStats
from .prepared import PreparedStatement
from .profile import ExecutionProfile, PhaseBreakdown
from .results import QueryResult

__all__ = [
    "Database",
    "ExecutionProfile",
    "PhaseBreakdown",
    "PlanCache",
    "PlanCacheStats",
    "PreparedStatement",
    "QueryResult",
]
