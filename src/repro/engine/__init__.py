"""Engine facade: the public Database API."""

from .database import Database
from .profile import ExecutionProfile
from .results import QueryResult

__all__ = ["Database", "ExecutionProfile", "QueryResult"]
