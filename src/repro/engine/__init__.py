"""Engine facade: the public Database API and the concurrent query server."""

from .database import Database
from .plan_cache import PlanCache, PlanCacheStats
from .prepared import PreparedStatement
from .profile import ExecutionProfile, PhaseBreakdown
from .results import QueryResult
from .server import (
    AdmissionController,
    GlobalMemoryBroker,
    QueryServer,
    SessionLease,
)
from .session import Session, SessionCatalog

__all__ = [
    "AdmissionController",
    "Database",
    "ExecutionProfile",
    "GlobalMemoryBroker",
    "PhaseBreakdown",
    "PlanCache",
    "PlanCacheStats",
    "PreparedStatement",
    "QueryResult",
    "QueryServer",
    "Session",
    "SessionCatalog",
    "SessionLease",
]
