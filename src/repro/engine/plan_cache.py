"""The statistics-epoch plan cache.

PR 1's batch executor made execution fast enough that end-to-end latency on
complex queries is dominated by compile-time work: parse, bind, DP join
enumeration, SCIA collector placement and predicate compilation were re-done
from scratch on every :meth:`repro.engine.Database.execute` call.  This
module caches the products of that work so repeated statements pay it once.

Two kinds of entry live in one LRU map:

* **Exact entries** — keyed by the *normalized* SQL text (the bound query
  deparsed back to canonical SQL, so formatting, alias qualification and
  literal spelling all collapse), the parameter signature, the
  :class:`~repro.core.modes.DynamicMode` and the execution mode.  They hold
  the bound query, the optimized annotated plan with statistics collectors
  already spliced, and the SCIA result.  Served plans are **cloned**
  (:func:`repro.plans.physical.clone_plan`) before execution: the SCIA, the
  annotation passes and mid-query plan switches all mutate plans in place,
  so the cached template itself is never executed.

* **Parametric entries** — keyed by the *parameter-masked* normalized SQL
  (host-variable constants rendered as ``:name`` placeholders), holding a
  :class:`~repro.core.parametric.ParametricPlan` scenario set.  Scenario
  plan *structure* is parameter-value independent (the scenario estimator
  deliberately ignores the values), so one entry serves every binding of the
  statement; per execution only the cheap ``choose_plan`` selection and
  value plugging remain.

Every entry is stamped with the catalog's statistics epoch
(:attr:`repro.storage.catalog.Catalog.stats_epoch`) at optimization time.
``ANALYZE``, data loads, index DDL, table DDL, injected statistics and
mid-query re-optimization feedback all bump the epoch, and a lookup whose
entry carries an older epoch is treated as a miss (and counted as an
invalidation) — a stale plan is never served after the engine has learned
better estimates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..concurrency import fork_safe_lock
from ..core.scia import SciaResult
from ..plans.logical import LogicalQuery
from ..plans.physical import PlanNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.parametric import ParametricPlan
    from ..observe.feedback import FeedbackRepository
    from ..observe.metrics import MetricsRegistry

#: Default number of cached entries (exact + parametric combined).
DEFAULT_CAPACITY = 128


def parameter_signature(params: Mapping[str, object] | None) -> tuple:
    """A hashable fingerprint of one parameter binding (names, types, values)."""
    if not params:
        return ()
    return tuple(
        (name, type(value).__name__, repr(value))
        for name, value in sorted(params.items(), key=lambda kv: kv[0])
    )


@dataclass
class CachedPlan:
    """One exact entry: everything :meth:`Database.execute` needs pre-done."""

    query: LogicalQuery
    plan: PlanNode
    scia: SciaResult | None
    epoch: int
    #: Fragment signatures of the cached plan (``observe.feedback``); used
    #: to proactively invalidate entries whose fragments earn a bad Q-error
    #: record after the entry was stored.  Empty when feedback is disabled.
    signatures: frozenset[str] = frozenset()
    #: Feedback-repository epoch at store time: only records absorbed
    #: *after* this can poison the entry.
    feedback_epoch: int = 0


@dataclass
class CachedScenarios:
    """One parametric entry: a reusable scenario set for a statement."""

    parametric: "ParametricPlan"
    epoch: int


@dataclass
class PlanCacheStats:
    """Hit/miss/invalidation counters, exposed on profiles and in tests."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    stores: int = 0
    #: Invalidations caused by the feedback repository recording a bad
    #: Q-error for one of the entry's fragments (a subset of
    #: ``invalidations``).
    feedback_invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> "PlanCacheStats":
        """An immutable copy for profiles/reports."""
        return PlanCacheStats(
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
            evictions=self.evictions,
            stores=self.stores,
            feedback_invalidations=self.feedback_invalidations,
        )


class PlanCache:
    """LRU map of prepared-query entries with statistics-epoch invalidation.

    The cache is shared by every session of a concurrent server, so lookup,
    store and clear serialize on one re-entrant lock: the LRU ``OrderedDict``
    and the stat counters are mutated under it, and the epoch check inside
    :meth:`lookup` is atomic with the entry fetch — a concurrent stats-epoch
    bump can race the *caller* (which re-checks the epoch it passed in), but
    can never corrupt LRU order or hand back a half-evicted entry.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[tuple, CachedPlan | CachedScenarios]" = OrderedDict()
        self.stats = PlanCacheStats()
        self._metrics = metrics
        self._lock = fork_safe_lock(self, "_lock")

    def _bump(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"plan_cache.{name}").inc(amount)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    @staticmethod
    def exact_key(
        normalized_sql: str,
        param_signature: tuple,
        mode_value: str,
        execution_mode: str,
        scope: str = "",
    ) -> tuple:
        """Key for a fully bound statement.

        ``scope`` is the session scope: statements that touch session-local
        tables (temp tables created through a :class:`~repro.engine.session
        .Session`) are keyed under that session's id so one session's plan —
        whose bound schema and statistics describe *its* temp table — is
        never served to another session with a same-named table.  Global
        statements use the empty scope and share entries across sessions.
        """
        return (
            "exact",
            scope,
            normalized_sql,
            param_signature,
            mode_value,
            execution_mode,
        )

    @staticmethod
    def parametric_key(masked_sql: str, scope: str = "") -> tuple:
        """Key for a parametric scenario set (mode/value independent)."""
        return ("parametric", scope, masked_sql)

    @staticmethod
    def execution_key(config, execution_mode: str, workers: int | None) -> str:
        """The execution-mode component of :meth:`exact_key`.

        Plans are executor-agnostic, but compiled-kernel reuse and the
        parallel telemetry a cached entry was profiled under are not — so
        parallel entries specialize on the resolved worker count and on
        every toggle that changes *which pipelines* fan out (probe-side
        joins, worker pre-aggregation, build-side joins, parallel sort)
        or how results travel (partitioned spill).  Prefetch is pure
        scheduling and deliberately excluded: it cannot change what
        executes.  Columnar entries specialize on the zone-map toggles —
        skipping changes which page groups execute, and the cost mode
        changes what a cached entry's profile meant — and on the
        columnar-morsel fan-out (plus its resolved worker count), which
        changes which pipelines run inside forked workers.  The vector
        knobs ride along too: ``vectorized_agg``/``vectorized_probe``
        decide which columnar pipelines take the kernel path (and what
        the cached profile's vector counters meant), and ``vectorized_agg``
        decides whether float SUM/AVG pre-aggregate in parallel plans.
        """
        if execution_mode == "columnar":
            key = (
                f"columnar/z{int(config.zone_map_skipping)}"
                f"/{config.zone_map_cost_mode}"
                f"/va{int(config.vectorized_agg)}"
                f"/vp{int(config.vectorized_probe)}"
            )
            if config.columnar_parallel:
                resolved = workers if workers is not None else config.parallel_workers
                return f"{key}/m1/w{resolved}"
            return f"{key}/m0"
        if execution_mode != "parallel":
            return execution_mode
        resolved = workers if workers is not None else config.parallel_workers
        return (
            f"parallel/w{resolved}"
            f"/j{int(config.parallel_joins)}"
            f"/a{int(config.parallel_preagg)}"
            f"/b{int(config.parallel_build)}"
            f"/s{int(config.parallel_sort)}"
            f"/p{int(config.parallel_spill)}"
            f"/va{int(config.vectorized_agg)}"
        )

    def lookup(
        self,
        key: tuple,
        epoch: int,
        feedback: "FeedbackRepository | None" = None,
    ):
        """The live entry under ``key``, or None.

        Entries stamped with an older statistics epoch are dropped and
        counted as invalidations (as well as misses); a hit refreshes the
        entry's LRU position.  When a feedback repository is supplied, an
        entry is also invalidated if any of its plan-fragment signatures
        earned a bad Q-error record after the entry was stored — the
        re-prepared plan then benefits from the feedback corrections.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self._bump("misses")
                return None
            if entry.epoch != epoch:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                self._bump("invalidations")
                self._bump("misses")
                return None
            signatures = getattr(entry, "signatures", frozenset())
            if feedback is not None and signatures:
                poisoned = feedback.poisoned_since(entry.feedback_epoch)
                if poisoned and not poisoned.isdisjoint(signatures):
                    del self._entries[key]
                    self.stats.invalidations += 1
                    self.stats.feedback_invalidations += 1
                    self.stats.misses += 1
                    self._bump("invalidations")
                    self._bump("feedback_invalidations")
                    self._bump("misses")
                    return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._bump("hits")
            return entry

    def store(self, key: tuple, entry: "CachedPlan | CachedScenarios") -> None:
        """Insert (or replace) an entry, evicting the LRU tail if needed."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = entry
            self.stats.stores += 1
            self._bump("stores")
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                self._bump("evictions")

    def drop_scope(self, scope: str) -> int:
        """Drop every entry keyed under ``scope``; returns the count dropped.

        Called when a session closes so its temp-table plans do not linger
        in the LRU (they can never hit again — the scope id is unique).
        """
        with self._lock:
            doomed = [key for key in self._entries if key[1] == scope]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
