"""Engine-wide configuration objects.

Three frozen dataclasses describe everything that is tunable:

* :class:`CostParameters` — the simulated cost clock.  The paper measured
  wall-clock seconds on a 4-node Paradise cluster; we charge deterministic
  cost units per page I/O and per tuple of CPU work instead, which preserves
  the *relative* behaviour the paper evaluates while making every experiment
  reproducible (see DESIGN.md section 3).
* :class:`ReoptimizationParameters` — the knobs of the Dynamic
  Re-Optimization algorithm itself: ``mu`` (maximum acceptable statistics
  collection overhead, paper section 2.5), ``theta1`` and ``theta2`` (the
  re-optimization gating heuristics, paper Equations 1 and 2).
* :class:`EngineConfig` — composition of the above plus engine-level knobs
  such as the per-query memory budget and the buffer-pool size.

All parameters carry the paper's published defaults (``mu = 0.05``,
``theta1 = 0.05``, ``theta2 = 0.2``, 8 MB query memory for the running
example, 4 KB pages).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

#: Bytes per simulated disk page.  TPC-D-era systems (and Paradise) used 4 KB
#: or 8 KB pages; 4 KB keeps page counts meaningful at small scale factors.
PAGE_SIZE_BYTES = 4096


def _default_execution_mode() -> str:
    """Execution-mode default, overridable via ``REPRO_EXECUTION_MODE``.

    Lets CI run the whole test suite under another executor (notably
    ``parallel``) without touching any call site.
    """
    return os.environ.get("REPRO_EXECUTION_MODE", "batch")


def _default_parallel_workers() -> int:
    """Worker-count default, overridable via ``REPRO_WORKERS`` (0 = auto)."""
    try:
        return int(os.environ.get("REPRO_WORKERS", "0"))
    except ValueError:
        return 0


def _env_flag(name: str) -> bool:
    """An on-by-default boolean knob: any value but 0/false/empty is on."""
    return os.environ.get(name, "1") not in ("0", "false", "False", "")


def _default_parallel_joins() -> bool:
    """Probe-side join parallelism default (``REPRO_PARALLEL_JOINS``)."""
    return _env_flag("REPRO_PARALLEL_JOINS")


def _default_parallel_preagg() -> bool:
    """Worker pre-aggregation default (``REPRO_PARALLEL_PREAGG``)."""
    return _env_flag("REPRO_PARALLEL_PREAGG")


def _default_parallel_prefetch() -> bool:
    """Result read-ahead default (``REPRO_PARALLEL_PREFETCH``)."""
    return _env_flag("REPRO_PARALLEL_PREFETCH")


def _default_parallel_build() -> bool:
    """Build-side join parallelism default (``REPRO_PARALLEL_BUILD``)."""
    return _env_flag("REPRO_PARALLEL_BUILD")


def _default_parallel_spill() -> bool:
    """Partitioned result spilling default (``REPRO_PARALLEL_SPILL``)."""
    return _env_flag("REPRO_PARALLEL_SPILL")


def _default_parallel_sort() -> bool:
    """Parallel run-sort default (``REPRO_PARALLEL_SORT``)."""
    return _env_flag("REPRO_PARALLEL_SORT")


def _default_vectorized_agg() -> bool:
    """Vectorized aggregate-fold kernel default (``REPRO_VECTOR_AGG``)."""
    return _env_flag("REPRO_VECTOR_AGG")


def _default_vectorized_probe() -> bool:
    """Vectorized join-probe kernel default (``REPRO_VECTOR_PROBE``)."""
    return _env_flag("REPRO_VECTOR_PROBE")


def _default_columnar_parallel() -> bool:
    """Columnar-morsel default (``REPRO_COLUMNAR_PARALLEL``)."""
    return _env_flag("REPRO_COLUMNAR_PARALLEL")


def _default_zone_maps() -> bool:
    """Zone-map scan skipping default (``REPRO_ZONE_MAPS``)."""
    return _env_flag("REPRO_ZONE_MAPS")


def _default_zone_map_cost() -> str:
    """Zone-map cost accounting default (``REPRO_ZONE_MAP_COST``)."""
    return os.environ.get("REPRO_ZONE_MAP_COST", "charge")


def _default_tracing() -> bool:
    """Query-tracing default (``REPRO_TRACE``): *off* unless explicitly
    enabled — tracing is the one observability knob that allocates per-span
    state, so unlike the parallel flags it is opt-in."""
    return os.environ.get("REPRO_TRACE", "") not in ("", "0", "false", "False")


def _default_server_mode() -> bool:
    """Server-mode default (``REPRO_SERVER``): *off* unless enabled — when
    on, every :meth:`Database.execute` is routed through the embedded query
    server's admission controller and memory broker, so CI can run the whole
    suite under concurrency governance without touching any call site."""
    return os.environ.get("REPRO_SERVER", "") not in ("", "0", "false", "False")


def _default_max_sessions() -> int:
    """Concurrent-statement cap default (``REPRO_MAX_SESSIONS``)."""
    try:
        return int(os.environ.get("REPRO_MAX_SESSIONS", "4"))
    except ValueError:
        return 4


def _default_admission_queue_size() -> int:
    """Admission-queue bound default (``REPRO_ADMISSION_QUEUE``)."""
    try:
        return int(os.environ.get("REPRO_ADMISSION_QUEUE", "64"))
    except ValueError:
        return 64


def _default_session_memory_policy() -> str:
    """Broker policy default (``REPRO_SESSION_MEMORY``)."""
    return os.environ.get("REPRO_SESSION_MEMORY", "fair")


def _default_server_worker_mode() -> str:
    """Statement-execution placement default (``REPRO_SERVER_WORKER_MODE``)."""
    return os.environ.get("REPRO_SERVER_WORKER_MODE", "thread")


def _default_feedback() -> bool:
    """Feedback-repository default (``REPRO_FEEDBACK``): *off* unless
    enabled — feedback deliberately changes future plans (that is its
    job), so unlike the purely observational knobs it is opt-in."""
    return os.environ.get("REPRO_FEEDBACK", "") not in ("", "0", "false", "False")


def _default_feedback_path() -> str:
    """Feedback-store location default (``REPRO_FEEDBACK_PATH``); empty
    string keeps the repository in memory only."""
    return os.environ.get("REPRO_FEEDBACK_PATH", "")


def _default_slow_query_s() -> float:
    """Slow-query threshold default (``REPRO_SLOW_QUERY``); 0 disables."""
    try:
        return float(os.environ.get("REPRO_SLOW_QUERY", "0") or 0.0)
    except ValueError:
        return 0.0


def _default_slow_query_path() -> str:
    """Slow-query log destination default (``REPRO_SLOW_QUERY_PATH``);
    empty string writes to stderr."""
    return os.environ.get("REPRO_SLOW_QUERY_PATH", "")


@dataclass(frozen=True)
class CostParameters:
    """Unit costs for the simulated execution clock.

    The ratios follow classical textbook cost models (a random page I/O is a
    few times a sequential one; per-tuple CPU work is two to three orders of
    magnitude cheaper than a page I/O), so plan choices made against this
    model match the choices a disk-based 1998 optimizer would make.
    """

    seq_page_read: float = 1.0
    rand_page_read: float = 4.0
    page_write: float = 1.5
    cpu_per_tuple: float = 0.002
    cpu_per_compare: float = 0.0005
    cpu_hash_build: float = 0.003
    cpu_hash_probe: float = 0.002
    cpu_per_aggregate: float = 0.002
    #: CPU charged per tuple examined by a statistics collector for the
    #: always-on statistics (cardinality, tuple size, min/max) — the paper
    #: treats these as negligible, hence well below ``cpu_per_tuple``.
    cpu_stats_per_tuple: float = 0.0001
    #: Extra per-tuple CPU when a collector also maintains a reservoir sample
    #: (histogram) or a distinct-count sketch for one attribute.
    cpu_stats_per_statistic: float = 0.0015
    #: Conversion factor used by optimizer calibration: how many cost units a
    #: real second of optimizer wall time corresponds to.  The paper calibrates
    #: T_opt,estimated from star-join optimizations (section 2.4).
    cost_units_per_second: float = 2000.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any unit cost is non-positive."""
        for name, value in vars(self).items():
            if value <= 0:
                raise ConfigError(f"cost parameter {name!r} must be positive, got {value}")


@dataclass(frozen=True)
class ReoptimizationParameters:
    """Parameters of the Dynamic Re-Optimization algorithm (paper sections 2.4/2.5)."""

    #: Maximum acceptable statistics-collection overhead as a fraction of the
    #: optimizer's estimated query execution time (paper: 0.05).
    mu: float = 0.05
    #: Equation 1 gate: do not re-optimize unless
    #: ``T_opt,estimated / T_cur_plan,improved <= theta1`` (paper: 0.05).
    theta1: float = 0.05
    #: Equation 2 gate: re-optimize only if the improved estimate exceeds the
    #: optimizer estimate by more than this relative amount (paper: 0.2).
    theta2: float = 0.2

    def validate(self) -> None:
        """Raise :class:`ConfigError` for out-of-range parameters."""
        if not 0.0 <= self.mu <= 1.0:
            raise ConfigError(f"mu must be in [0, 1], got {self.mu}")
        if self.theta1 < 0:
            raise ConfigError(f"theta1 must be non-negative, got {self.theta1}")
        if self.theta2 < 0:
            raise ConfigError(f"theta2 must be non-negative, got {self.theta2}")


@dataclass(frozen=True)
class EngineConfig:
    """Top-level configuration for a :class:`repro.engine.Database` instance."""

    cost: CostParameters = field(default_factory=CostParameters)
    reopt: ReoptimizationParameters = field(default_factory=ReoptimizationParameters)
    #: Simulated page size in bytes.
    page_size: int = PAGE_SIZE_BYTES
    #: Buffer-pool capacity in pages (the paper used a 32 MB pool per node).
    buffer_pool_pages: int = 1024
    #: Workspace memory budget per query, in pages (8 MB at 4 KB pages matches
    #: the paper's running example in section 2.3).
    query_memory_pages: int = 2048
    #: Fudge factor for hash-table memory overhead (classical value ~1.2).
    hash_fudge_factor: float = 1.2
    #: Reservoir-sample capacity used by statistics collectors: one database
    #: page worth of attribute values, as in the paper's implementation.
    reservoir_sample_size: int = 512
    #: Number of buckets built for run-time histograms.
    runtime_histogram_buckets: int = 32
    #: Paper section 2.3 extension: "If ... the operators in the database
    #: system have been implemented in such a manner that they can respond
    #: to changes in memory allocation in mid-execution, our algorithm can
    #: be extended to take advantage of this."  When True, a hash join's
    #: grant stays adjustable until its build phase *finishes* (the spill
    #: decision point), so a re-allocation triggered by the collector on its
    #: own build input still reaches it.  Paradise did not support this;
    #: the default False reproduces the paper's baseline behaviour.
    responsive_hash_joins: bool = False
    #: Tuple-at-a-time (``"row"``), vectorized (``"batch"``), morsel-driven
    #: multi-process (``"parallel"``) or NumPy-columnar (``"columnar"``)
    #: execution.  All paths produce identical rows, cost-clock charges and
    #: observed statistics (columnar under the default
    #: ``zone_map_cost_mode="charge"``); the batch path amortises Python
    #: interpretation overhead over ``batch_size`` tuples and is the
    #: default, the parallel path additionally fans leaf pipelines across a
    #: fork-based worker pool, and the columnar path evaluates scan
    #: predicates as NumPy masks over per-page-group column arrays with
    #: zone-map group skipping.
    execution_mode: str = field(default_factory=_default_execution_mode)
    #: Rows per batch on the batch execution path.  Operators may yield
    #: slightly larger batches (scans round up to page boundaries).
    batch_size: int = 1024
    #: Worker processes for ``execution_mode="parallel"``; 0 means one per
    #: CPU core (``os.cpu_count()``).  1 executes morsels in-process.
    parallel_workers: int = field(default_factory=_default_parallel_workers)
    #: Pages of a base table per morsel (the unit of parallel work).  64
    #: pages ≈ 256 KB of simulated data — large enough to amortise pickling
    #: a result batch back, small enough to load-balance.
    morsel_pages: int = 64
    #: A scan is only parallelized when it splits into at least this many
    #: morsels; smaller inputs stay on the serial batch path.
    parallel_min_morsels: int = 2
    #: How parallel leaf pipelines collect reservoir samples:
    #: ``"exact"`` (default) replays the serial sampling RNG over the merged
    #: morsel outputs in the parent, making every observed statistic —
    #: histograms included — bit-identical to the batch path; ``"merge"``
    #: samples per morsel (RNG seeded by morsel index) and merges weighted,
    #: which is schedule-independent but yields a different (equally valid)
    #: sample than serial execution.
    parallel_stats: str = "exact"
    #: Whether hash joins fan their probe side across the worker pool once
    #: the build side has materialized (workers inherit the hash table
    #: copy-on-write).  Off restricts parallelism to leaf pipelines, the
    #: pre-PR-4 behaviour.
    parallel_joins: bool = field(default_factory=_default_parallel_joins)
    #: Whether workers pre-aggregate associative aggregates (COUNT/MIN/MAX
    #: and integer SUM) and ship per-group partials instead of rows.
    #: Output bytes are identical either way; float SUM/AVG pipelines
    #: never pre-aggregate regardless.
    parallel_preagg: bool = field(default_factory=_default_parallel_preagg)
    #: Whether a per-partition read-ahead thread in the parent stages
    #: (deserializes) the next morsel results while earlier partitions are
    #: still merging — overlapping real unpickling work with simulated-I/O
    #: replay the way a spill reader prefetches its next partition.
    parallel_prefetch: bool = field(default_factory=_default_parallel_prefetch)
    #: Whether hash joins build their hash table in the workers: each
    #: partition worker folds its morsel range into per-key row lists and
    #: the parent merges them in morsel order, so within-key row order and
    #: first-occurrence key order match the serial insertion loop exactly.
    parallel_build: bool = field(default_factory=_default_parallel_build)
    #: Whether a partition worker whose staging window is exhausted spills
    #: its morsel results to a per-partition file (keyed by the stable
    #: range-affine partition id) instead of blocking.  Transport-level
    #: only: simulated charges are replayed by the parent identically, so
    #: spilling can never change costs, statistics or results.
    parallel_spill: bool = field(default_factory=_default_parallel_spill)
    #: Whether sorts over leaf-extractable inputs sort per-worker runs in
    #: the morsel workers and merge them with a loser tree that breaks ties
    #: in morsel order — byte-identical to the serial stable sort.
    parallel_sort: bool = field(default_factory=_default_parallel_sort)
    #: Whether ``execution_mode="columnar"`` fans the per-page-group
    #: columnar kernels (mask narrowing, zone-map skipping, projection
    #: takes) across the morsel worker pool when more than one worker
    #: resolves.  Charge-mode replay in the parent keeps parity.
    columnar_parallel: bool = field(default_factory=_default_columnar_parallel)
    #: Whether hash aggregates over a prepared column view fold groups with
    #: the vectorized NumPy kernels (``executor/agg_kernels.py``) instead
    #: of the per-row Python accumulator, and whether morsel
    #: pre-aggregation may cover float SUM/AVG by shipping per-group value
    #: runs folded once at the merge point.  Bit-parity is unconditional —
    #: the kernels verify their sequential-fold property at import and
    #: fall back to the serial fold if NumPy ever changes it.
    vectorized_agg: bool = field(default_factory=_default_vectorized_agg)
    #: Whether hash joins probing a columnar pipeline with a single int64
    #: or dictionary-encoded key answer whole probe batches via a sorted
    #: build-key index (``np.searchsorted``) instead of per-row dict
    #: lookups.  Match order and every charge are identical to the serial
    #: probe loop.
    vectorized_probe: bool = field(default_factory=_default_vectorized_probe)
    #: Whether ``execution_mode="columnar"`` scans consult per-page-group
    #: zone maps (min/max/null-count) to skip groups a filter provably
    #: matches zero rows in.  Skipping never changes results; whether it
    #: changes *costs* is governed by :attr:`zone_map_cost_mode`.
    zone_map_skipping: bool = field(default_factory=_default_zone_maps)
    #: How zone-map-skipped page groups are accounted on the simulated
    #: clock.  ``"charge"`` (default) replays the skipped groups' page
    #: charges, keeping CostBreakdown/buffer statistics byte-identical to
    #: the row path — the wall-clock win comes from never materialising or
    #: filtering the rows, and re-optimization decisions stay
    #: mode-invariant.  ``"free"`` charges zero buffer-pool page reads for
    #: skipped groups: the simulated I/O savings become visible in
    #: profiles, at the price of cost/buffer parity with the other modes.
    zone_map_cost_mode: str = field(default_factory=_default_zone_map_cost)
    #: Distinct-value budget for dictionary-encoding a string column in the
    #: columnar store; columns exceeding it overflow to plain encoding.
    columnar_dictionary_max: int = 256
    #: Whether :meth:`Database.execute` serves repeated statements from the
    #: statistics-epoch plan cache.  Disabling forces cold preparation on
    #: every call; results and simulated-cost profiles are identical either
    #: way (only wall-clock latency differs).
    plan_cache_enabled: bool = True
    #: Capacity of the plan cache (exact + parametric entries combined).
    plan_cache_size: int = 128
    #: Route every :meth:`Database.execute` through the embedded query
    #: server (admission control + memory broker) as if it arrived on a
    #: session.  Uncontended single-threaded execution is byte-identical to
    #: direct execution — the broker grants the full per-query budget when
    #: nothing competes for it — so the whole test suite can run with the
    #: server enabled.
    server_mode: bool = field(default_factory=_default_server_mode)
    #: Statements allowed to execute concurrently (the admission
    #: controller's active-slot count).  Arrivals beyond this park in the
    #: admission queue.
    max_sessions: int = field(default_factory=_default_max_sessions)
    #: Bound on statements parked waiting for admission; arrivals past the
    #: bound are rejected with :class:`~repro.errors.AdmissionError`
    #: instead of waiting (overload sheds load rather than queueing
    #: without limit).
    admission_queue_size: int = field(default_factory=_default_admission_queue_size)
    #: How the global memory broker divides :attr:`server_memory_pages`
    #: across concurrently admitted statements.  ``"fair"`` guarantees each
    #: statement its :func:`MemoryManager.split_grant` share, grants up to
    #: the full request from free pages, re-grants freed pages to running
    #: statements mid-query and reclaims unpromised headroom when a new
    #: arrival needs its guarantee; ``"static"`` always grants exactly the
    #: share (no mid-query traffic, fully deterministic under concurrency).
    session_memory_policy: str = field(default_factory=_default_session_memory_policy)
    #: Total workspace pages the broker arbitrates across sessions.  0 (the
    #: default) means ``max_sessions * query_memory_pages`` — every
    #: statement can hold its full per-query budget simultaneously, so
    #: concurrency alone never changes memory grants (and therefore never
    #: changes simulated costs).  Set it lower to create real cross-query
    #: memory pressure.
    server_memory_pages: int = 0
    #: Where admitted statements execute: ``"thread"`` runs them inline on
    #: the submitting session's thread (shared memory, mid-query broker
    #: re-grants reach the running query); ``"fork"`` runs each statement in
    #: a forked child process (true multi-core throughput; the lease is
    #: fixed at admission).  Falls back to ``"thread"`` with a warning where
    #: ``fork`` is unavailable.
    server_worker_mode: str = field(default_factory=_default_server_worker_mode)
    #: Seconds a statement may wait for admission + memory before the
    #: server gives up with :class:`~repro.errors.AdmissionError` (guards
    #: tests and CI against deadlock-shaped bugs).
    admission_timeout_s: float = 120.0
    #: Span-based query tracing (:mod:`repro.observe`).  Purely
    #: observational: the tracer reads the simulated clock but never
    #: charges it, so rows/costs/statistics are byte-identical with tracing
    #: on or off.  When enabled the trace rides on ``profile.trace``.
    tracing: bool = field(default_factory=_default_tracing)
    #: Persistent estimate-feedback repository (:mod:`repro.observe.feedback`).
    #: When on, every query's estimate-vs-actual records are absorbed at
    #: query end and *future* optimizations consult them: the estimator
    #: applies bounded cardinality corrections, the plan cache invalidates
    #: entries with newly recorded bad Q-error, and SCIA/triggers treat
    #: historically-misestimated fragments as high risk.  Recording itself
    #: is zero-perturbation (pure reads after the cost clock stops); only
    #: *subsequent* queries plan differently — which is the point.
    feedback_enabled: bool = field(default_factory=_default_feedback)
    #: JSON file backing the feedback repository; empty = memory-only (the
    #: repository dies with the Database instance).
    feedback_path: str = field(default_factory=_default_feedback_path)
    #: A fragment's recorded Q-error must reach this bound before feedback
    #: acts on it (correction, cache invalidation, risk arming).  Matches
    #: ``observe.analyze.Q_ERROR_BAD``: below it the histogram estimate is
    #: considered fine and is left untouched.
    feedback_q_error_threshold: float = 2.0
    #: Per-statistics-epoch confidence decay for feedback records.  A record
    #: observed at catalog stats epoch E is applied at epoch E+k with weight
    #: ``feedback_decay ** k`` — fresh observations override the histogram
    #: fully, stale ones fade back toward it as ANALYZE/loads churn the data.
    feedback_decay: float = 0.9
    #: Bound on how far a feedback correction may move an estimate, as a
    #: multiplicative factor (paper-style damping: a single wild observation
    #: cannot swing an estimate by more than this either way).
    feedback_max_correction: float = 100.0
    #: Wall-clock seconds (compile + execute) above which a statement is
    #: written to the slow-query log as one structured JSON line.  0 (the
    #: default) disables the log.
    slow_query_s: float = field(default_factory=_default_slow_query_s)
    #: Slow-query log destination (appended); empty string logs to stderr.
    slow_query_path: str = field(default_factory=_default_slow_query_path)
    #: Deterministic seed for sampling/sketches inside the engine.
    seed: int = 0x5EED

    def validate(self) -> None:
        """Validate the whole configuration tree."""
        self.cost.validate()
        self.reopt.validate()
        if self.page_size <= 0:
            raise ConfigError(f"page_size must be positive, got {self.page_size}")
        if self.buffer_pool_pages <= 0:
            raise ConfigError(f"buffer_pool_pages must be positive, got {self.buffer_pool_pages}")
        if self.query_memory_pages <= 0:
            raise ConfigError(f"query_memory_pages must be positive, got {self.query_memory_pages}")
        if self.hash_fudge_factor < 1.0:
            raise ConfigError(f"hash_fudge_factor must be >= 1.0, got {self.hash_fudge_factor}")
        if self.reservoir_sample_size <= 0:
            raise ConfigError(f"reservoir_sample_size must be positive, got {self.reservoir_sample_size}")
        if self.runtime_histogram_buckets <= 0:
            raise ConfigError(f"runtime_histogram_buckets must be positive, got {self.runtime_histogram_buckets}")
        if self.execution_mode not in ("row", "batch", "parallel", "columnar"):
            raise ConfigError(
                "execution_mode must be 'row', 'batch', 'parallel' or "
                f"'columnar', got {self.execution_mode!r}"
            )
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")
        if self.parallel_workers < 0:
            raise ConfigError(
                f"parallel_workers must be non-negative, got {self.parallel_workers}"
            )
        if self.morsel_pages <= 0:
            raise ConfigError(f"morsel_pages must be positive, got {self.morsel_pages}")
        if self.parallel_min_morsels <= 0:
            raise ConfigError(
                f"parallel_min_morsels must be positive, got {self.parallel_min_morsels}"
            )
        if self.parallel_stats not in ("exact", "merge"):
            raise ConfigError(
                f"parallel_stats must be 'exact' or 'merge', got {self.parallel_stats!r}"
            )
        if self.zone_map_cost_mode not in ("charge", "free"):
            raise ConfigError(
                "zone_map_cost_mode must be 'charge' or 'free', "
                f"got {self.zone_map_cost_mode!r}"
            )
        if self.columnar_dictionary_max <= 0:
            raise ConfigError(
                "columnar_dictionary_max must be positive, "
                f"got {self.columnar_dictionary_max}"
            )
        if self.max_sessions <= 0:
            raise ConfigError(
                f"max_sessions must be positive, got {self.max_sessions}"
            )
        if self.admission_queue_size < 0:
            raise ConfigError(
                "admission_queue_size must be non-negative, "
                f"got {self.admission_queue_size}"
            )
        if self.session_memory_policy not in ("fair", "static"):
            raise ConfigError(
                "session_memory_policy must be 'fair' or 'static', "
                f"got {self.session_memory_policy!r}"
            )
        if self.server_memory_pages < 0:
            raise ConfigError(
                "server_memory_pages must be non-negative, "
                f"got {self.server_memory_pages}"
            )
        if self.server_worker_mode not in ("thread", "fork"):
            raise ConfigError(
                "server_worker_mode must be 'thread' or 'fork', "
                f"got {self.server_worker_mode!r}"
            )
        if self.admission_timeout_s <= 0:
            raise ConfigError(
                "admission_timeout_s must be positive, "
                f"got {self.admission_timeout_s}"
            )
        for flag in (
            "parallel_joins",
            "parallel_preagg",
            "parallel_prefetch",
            "parallel_build",
            "parallel_spill",
            "parallel_sort",
            "columnar_parallel",
            "vectorized_agg",
            "vectorized_probe",
            "tracing",
            "zone_map_skipping",
            "server_mode",
            "feedback_enabled",
        ):
            if not isinstance(getattr(self, flag), bool):
                raise ConfigError(
                    f"{flag} must be a bool, got {getattr(self, flag)!r}"
                )
        if self.plan_cache_size <= 0:
            raise ConfigError(
                f"plan_cache_size must be positive, got {self.plan_cache_size}"
            )
        if self.feedback_q_error_threshold < 1.0:
            raise ConfigError(
                "feedback_q_error_threshold must be >= 1.0 (Q-error is), "
                f"got {self.feedback_q_error_threshold}"
            )
        if not 0.0 < self.feedback_decay <= 1.0:
            raise ConfigError(
                f"feedback_decay must be in (0, 1], got {self.feedback_decay}"
            )
        if self.feedback_max_correction < 1.0:
            raise ConfigError(
                "feedback_max_correction must be >= 1.0, "
                f"got {self.feedback_max_correction}"
            )
        if self.slow_query_s < 0:
            raise ConfigError(
                f"slow_query_s must be non-negative, got {self.slow_query_s}"
            )

    @property
    def resolved_server_memory_pages(self) -> int:
        """The broker's total pool: explicit, or one full budget per slot."""
        if self.server_memory_pages:
            return self.server_memory_pages
        return self.max_sessions * self.query_memory_pages

    def with_updates(self, **changes: Any) -> "EngineConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        updated = replace(self, **changes)
        updated.validate()
        return updated
