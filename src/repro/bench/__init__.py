"""Benchmark harness: experiment configs, runners and table rendering."""

from .harness import (
    ExperimentConfig,
    QueryComparison,
    build_database,
    rows_equivalent,
    run_comparison,
    run_experiment,
)
from .reporting import comparison_table, render_table

__all__ = [
    "ExperimentConfig",
    "QueryComparison",
    "build_database",
    "comparison_table",
    "render_table",
    "rows_equivalent",
    "run_comparison",
    "run_experiment",
]
