"""Benchmark harness: experiment configs, runners and table rendering."""

from .harness import (
    ExperimentConfig,
    QueryComparison,
    build_database,
    rows_equivalent,
    run_comparison,
    run_experiment,
)
from .reporting import (
    available_cpus,
    comparison_table,
    gate_status,
    render_table,
    stamp_document,
)

__all__ = [
    "ExperimentConfig",
    "QueryComparison",
    "available_cpus",
    "build_database",
    "comparison_table",
    "gate_status",
    "render_table",
    "rows_equivalent",
    "run_comparison",
    "run_experiment",
    "stamp_document",
]
