"""Rendering experiment results as paper-style tables, plus the
environment stamp shared by every ``BENCH_*.json`` document."""

from __future__ import annotations

import os
from typing import Sequence

from ..core.modes import DynamicMode
from .harness import QueryComparison


def available_cpus() -> int:
    """CPUs actually granted to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def gate_status(enforced: bool, required_cpus: int = 0) -> str:
    """Canonical per-gate status string for benchmark documents:
    ``"enforced"`` when the gate ran, ``"skipped-needs-<N>-cpus"`` when the
    host could not grant the CPUs the gate needs."""
    if enforced:
        return "enforced"
    return f"skipped-needs-{required_cpus}-cpus"


def stamp_document(
    document: dict, required_cpus: dict[str, int] | None = None
) -> dict:
    """Stamp a benchmark JSON document with the host environment.

    Adds ``cpu_count`` (affinity-aware) and a top-level ``gates`` map:
    one :func:`gate_status` string per entry of ``required_cpus`` (gate
    key -> CPUs that gate needs; 0 for gates with no CPU requirement).
    Each named key must exist in the document as a dict with an
    ``enforced`` bool — the canonical gate shape the bench scripts write.
    Returns the document for chaining.
    """
    document["cpu_count"] = available_cpus()
    gates = {}
    for key, cpus in (required_cpus or {}).items():
        gate = document[key]
        gates[key] = gate_status(bool(gate.get("enforced")), cpus)
    document["gates"] = gates
    return document


def comparison_table(
    comparisons: Sequence[QueryComparison],
    modes: Sequence[DynamicMode],
    baseline: DynamicMode = DynamicMode.OFF,
    title: str = "",
) -> str:
    """A normalized-execution-time table (baseline mode = 100).

    Matches the presentation of the paper's Figures 10-12: one row per
    query, one column per mode, values normalized to the Normal (OFF) run.
    """
    headers = ["query", "category", "joins"] + [m.value for m in modes] + [
        "improvement%",
        "switches",
        "reallocs",
    ]
    rows: list[list[str]] = []
    for comp in comparisons:
        row = [comp.query.name, comp.query.category, str(comp.query.join_count)]
        for mode in modes:
            row.append(f"{comp.normalized(mode, baseline):.1f}")
        best = max(
            (m for m in modes if m is not baseline),
            key=lambda m: comp.improvement_pct(m, baseline),
            default=baseline,
        )
        row.append(f"{comp.improvement_pct(best, baseline):.1f}")
        full = comp.profiles.get(DynamicMode.FULL.value) or next(
            (comp.profiles[m.value] for m in modes if m is not baseline), None
        )
        row.append(str(full.plan_switches if full else 0))
        row.append(str(full.memory_reallocations if full else 0))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Align headers and rows into a fixed-width text table."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
