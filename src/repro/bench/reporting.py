"""Rendering experiment results as paper-style tables."""

from __future__ import annotations

from typing import Sequence

from ..core.modes import DynamicMode
from .harness import QueryComparison


def comparison_table(
    comparisons: Sequence[QueryComparison],
    modes: Sequence[DynamicMode],
    baseline: DynamicMode = DynamicMode.OFF,
    title: str = "",
) -> str:
    """A normalized-execution-time table (baseline mode = 100).

    Matches the presentation of the paper's Figures 10-12: one row per
    query, one column per mode, values normalized to the Normal (OFF) run.
    """
    headers = ["query", "category", "joins"] + [m.value for m in modes] + [
        "improvement%",
        "switches",
        "reallocs",
    ]
    rows: list[list[str]] = []
    for comp in comparisons:
        row = [comp.query.name, comp.query.category, str(comp.query.join_count)]
        for mode in modes:
            row.append(f"{comp.normalized(mode, baseline):.1f}")
        best = max(
            (m for m in modes if m is not baseline),
            key=lambda m: comp.improvement_pct(m, baseline),
            default=baseline,
        )
        row.append(f"{comp.improvement_pct(best, baseline):.1f}")
        full = comp.profiles.get(DynamicMode.FULL.value) or next(
            (comp.profiles[m.value] for m in modes if m is not baseline), None
        )
        row.append(str(full.plan_switches if full else 0))
        row.append(str(full.memory_reallocations if full else 0))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Align headers and rows into a fixed-width text table."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
