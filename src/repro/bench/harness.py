"""Experiment harness.

Runs the paper's queries under each :class:`~repro.core.modes.DynamicMode`
against a freshly generated TPC-D database and collects the execution
profiles.  Used by the ``benchmarks/`` suite to regenerate each figure and
by EXPERIMENTS.md to record paper-vs-measured numbers.

The paper reports normalized execution times (Normal = 100); the harness
does the same via :meth:`QueryComparison.normalized`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..config import EngineConfig
from ..core.modes import DynamicMode
from ..engine.database import Database
from ..engine.profile import ExecutionProfile
from ..workloads.tpcd import (
    ALL_QUERIES,
    CatalogProfile,
    TpcdConfig,
    TpcdQuery,
    generate_tpcd,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's environment."""

    scale_factor: float = 0.01
    zipf_z: float = 0.0
    catalog: CatalogProfile = CatalogProfile.COARSE
    memory_pages: int = 256
    buffer_pool_pages: int = 1024
    seed: int = 7
    #: Row-count error under the STALE catalog profile (<1: catalog believes
    #: the fact tables are smaller than they are -> underestimates; >1:
    #: catalog believes they are bigger -> overestimates).
    stale_row_factor: float = 0.5
    #: Cross-query feedback repository.  Off by default — experiments
    #: compare repeated executions of one engine and need the cold
    #: optimizer's mistakes to repeat identically, so the learning loop is
    #: opt-in (``bench_feedback`` turns it on deliberately) and a
    #: ``REPRO_FEEDBACK=1`` suite leg cannot perturb the others.
    feedback: bool = False

    def engine_config(self) -> EngineConfig:
        """The corresponding engine configuration."""
        return EngineConfig().with_updates(
            query_memory_pages=self.memory_pages,
            buffer_pool_pages=self.buffer_pool_pages,
            feedback_enabled=self.feedback,
        )

    def tpcd_config(self) -> TpcdConfig:
        """The corresponding data-generation configuration."""
        return TpcdConfig(
            scale_factor=self.scale_factor,
            zipf_z=self.zipf_z,
            seed=self.seed,
            catalog=self.catalog,
            stale_row_factor=self.stale_row_factor,
        )


def build_database(config: ExperimentConfig) -> Database:
    """Create and populate a TPC-D database for one experiment."""
    db = Database(config.engine_config())
    generate_tpcd(db, config.tpcd_config())
    return db


@dataclass
class QueryComparison:
    """Profiles of one query under several modes."""

    query: TpcdQuery
    profiles: dict[str, ExecutionProfile] = field(default_factory=dict)
    row_sets_match: bool = True

    def cost(self, mode: DynamicMode) -> float:
        """Total simulated cost under one mode."""
        return self.profiles[mode.value].total_cost

    def normalized(self, mode: DynamicMode, baseline: DynamicMode = DynamicMode.OFF) -> float:
        """Execution time normalized to the baseline mode (baseline = 100)."""
        base = self.cost(baseline)
        if base <= 0:
            return 0.0
        return 100.0 * self.cost(mode) / base

    def improvement_pct(
        self, mode: DynamicMode, baseline: DynamicMode = DynamicMode.OFF
    ) -> float:
        """Percent improvement of ``mode`` over the baseline."""
        return 100.0 - self.normalized(mode, baseline)


def rows_equivalent(a: Sequence[tuple], b: Sequence[tuple]) -> bool:
    """Order-insensitive, float-tolerant row-set comparison."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(sorted(a, key=str), sorted(b, key=str)):
        if len(ra) != len(rb):
            return False
        for va, vb in zip(ra, rb):
            if isinstance(va, float) and isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-6):
                    return False
            elif va != vb:
                return False
    return True


def run_comparison(
    db: Database,
    query: TpcdQuery,
    modes: Iterable[DynamicMode] = (DynamicMode.OFF, DynamicMode.FULL),
) -> QueryComparison:
    """Execute one query under each mode and compare results."""
    comparison = QueryComparison(query=query)
    reference_rows = None
    for mode in modes:
        result = db.execute(query.sql, mode=mode)
        comparison.profiles[mode.value] = result.profile
        if reference_rows is None:
            reference_rows = result.rows
        elif not rows_equivalent(reference_rows, result.rows):
            comparison.row_sets_match = False
    return comparison


def run_experiment(
    config: ExperimentConfig,
    queries: Sequence[TpcdQuery] = ALL_QUERIES,
    modes: Iterable[DynamicMode] = (DynamicMode.OFF, DynamicMode.FULL),
) -> list[QueryComparison]:
    """Build a database and run the full query-by-mode grid."""
    db = build_database(config)
    modes = tuple(modes)
    return [run_comparison(db, query, modes) for query in queries]
