"""The raw (pre-binding) SQL abstract syntax tree.

These nodes mirror the surface syntax; names are unresolved strings.  The
binder turns them into the bound model of :mod:`repro.plans.logical`.
"""

from __future__ import annotations

from dataclasses import dataclass


class AstNode:
    """Marker base class for AST nodes."""


# -- scalar expressions -------------------------------------------------


class AstExpr(AstNode):
    """Base class for expression nodes."""


@dataclass(frozen=True)
class AstColumn(AstExpr):
    """A column reference, optionally qualified (``table.column``)."""

    qualifier: str | None
    name: str


@dataclass(frozen=True)
class AstLiteral(AstExpr):
    """A literal constant (int, float or string)."""

    value: object


@dataclass(frozen=True)
class AstParameter(AstExpr):
    """A host-variable parameter (``:name``)."""

    name: str


@dataclass(frozen=True)
class AstArith(AstExpr):
    """Binary arithmetic."""

    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AstNeg(AstExpr):
    """Unary minus."""

    child: AstExpr


@dataclass(frozen=True)
class AstFuncCall(AstExpr):
    """A scalar function call (resolved against the UDF registry by the binder)."""

    name: str
    args: tuple[AstExpr, ...]


@dataclass(frozen=True)
class AstAggregate(AstExpr):
    """An aggregate call; ``arg`` is None for ``COUNT(*)``."""

    func: str
    arg: AstExpr | None


# -- boolean expressions -------------------------------------------------


class AstCondition(AstNode):
    """Base class for boolean condition nodes."""


@dataclass(frozen=True)
class AstComparison(AstCondition):
    """``left op right``."""

    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AstBetween(AstCondition):
    """``expr BETWEEN low AND high``."""

    expr: AstExpr
    low: AstExpr
    high: AstExpr


@dataclass(frozen=True)
class AstIn(AstCondition):
    """``expr IN (v1, v2, ...)``."""

    expr: AstExpr
    values: tuple[AstExpr, ...]


@dataclass(frozen=True)
class AstAnd(AstCondition):
    """Conjunction."""

    left: AstCondition
    right: AstCondition


@dataclass(frozen=True)
class AstOr(AstCondition):
    """Disjunction."""

    left: AstCondition
    right: AstCondition


@dataclass(frozen=True)
class AstNot(AstCondition):
    """Negation."""

    child: AstCondition


# -- statement ------------------------------------------------------------


@dataclass(frozen=True)
class AstSelectItem(AstNode):
    """One SELECT-list item with an optional alias."""

    expr: AstExpr
    alias: str | None = None


@dataclass(frozen=True)
class AstTableRef(AstNode):
    """One FROM-clause table with an optional alias."""

    name: str
    alias: str | None = None


@dataclass(frozen=True)
class AstOrderItem(AstNode):
    """One ORDER BY key."""

    expr: AstExpr
    ascending: bool = True


@dataclass(frozen=True)
class AstSelect(AstNode):
    """A full SELECT statement."""

    items: tuple[AstSelectItem, ...]
    tables: tuple[AstTableRef, ...]
    where: AstCondition | None = None
    group_by: tuple[AstColumn, ...] = ()
    having: AstCondition | None = None
    order_by: tuple[AstOrderItem, ...] = ()
    limit: int | None = None
    select_star: bool = False
    distinct: bool = False
