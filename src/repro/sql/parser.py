"""Recursive-descent parser for the SQL subset.

Grammar (informally)::

    select    := SELECT [DISTINCT] ('*' | item (',' item)*)
                 FROM table_ref (',' table_ref)*
                 [WHERE condition] [GROUP BY column (',' column)*]
                 [HAVING condition]
                 [ORDER BY order_item (',' order_item)*] [LIMIT number]
    item      := expr [AS ident | ident]
    table_ref := ident [AS ident | ident]
    condition := or_cond
    or_cond   := and_cond (OR and_cond)*
    and_cond  := not_cond (AND not_cond)*
    not_cond  := NOT not_cond | predicate
    predicate := expr (cmp expr | BETWEEN expr AND expr | IN '(' expr, ... ')')
               | '(' condition ')'
    expr      := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := ['-'] primary
    primary   := literal | DATE string | ':'param | agg '(' ('*'|expr) ')'
               | ident '(' args ')' | [ident '.'] ident | '(' expr ')'

Dates become integer ordinals at parse time, so downstream layers treat them
as plain numbers.
"""

from __future__ import annotations

from ..errors import ParseError
from ..storage.schema import date_to_int
from .ast import (
    AstAggregate,
    AstAnd,
    AstArith,
    AstBetween,
    AstColumn,
    AstComparison,
    AstCondition,
    AstExpr,
    AstFuncCall,
    AstIn,
    AstLiteral,
    AstNeg,
    AstNot,
    AstOr,
    AstOrderItem,
    AstParameter,
    AstSelect,
    AstSelectItem,
    AstTableRef,
)
from .lexer import Token, TokenType, tokenize

_AGG_FUNCS = {"sum", "avg", "count", "min", "max"}
_COMPARE_SYMBOLS = {"=", "<>", "<", "<=", ">", ">="}


class Parser:
    """Single-statement recursive-descent parser over a token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(f"expected {word.upper()!r}, found {self.current.value!r}")

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.type is TokenType.SYMBOL and self.current.value == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise ParseError(f"expected {symbol!r}, found {self.current.value!r}")

    def expect_ident(self) -> str:
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        # Allow non-reserved-looking keywords as identifiers where sensible.
        raise ParseError(f"expected identifier, found {token.value!r}")

    # -- entry point ----------------------------------------------------

    def parse_select(self) -> AstSelect:
        """Parse one SELECT statement; trailing tokens are an error."""
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        select_star = False
        items: list[AstSelectItem] = []
        if self.accept_symbol("*"):
            select_star = True
        else:
            items.append(self._select_item())
            while self.accept_symbol(","):
                items.append(self._select_item())
        self.expect_keyword("from")
        tables = [self._table_ref()]
        while self.accept_symbol(","):
            tables.append(self._table_ref())
        where = None
        if self.accept_keyword("where"):
            where = self._condition()
        group_by: list[AstColumn] = []
        order_by: list[AstOrderItem] = []
        having = None
        limit = None
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self._column_ref())
            while self.accept_symbol(","):
                group_by.append(self._column_ref())
        if self.accept_keyword("having"):
            having = self._condition()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._order_item())
            while self.accept_symbol(","):
                order_by.append(self._order_item())
        if self.accept_keyword("limit"):
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise ParseError(f"expected a number after LIMIT, found {token.value!r}")
            self.advance()
            limit = int(token.value)
        if self.current.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input at {self.current.value!r}")
        return AstSelect(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            select_star=select_star,
            distinct=distinct,
        )

    # -- clause pieces ----------------------------------------------------

    def _select_item(self) -> AstSelectItem:
        expr = self._expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return AstSelectItem(expr=expr, alias=alias)

    def _table_ref(self) -> AstTableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return AstTableRef(name=name, alias=alias)

    def _order_item(self) -> AstOrderItem:
        expr = self._expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return AstOrderItem(expr=expr, ascending=ascending)

    def _column_ref(self) -> AstColumn:
        first = self.expect_ident()
        if self.accept_symbol("."):
            return AstColumn(qualifier=first, name=self.expect_ident())
        return AstColumn(qualifier=None, name=first)

    # -- conditions ------------------------------------------------------

    def _condition(self) -> AstCondition:
        return self._or_cond()

    def _or_cond(self) -> AstCondition:
        left = self._and_cond()
        while self.accept_keyword("or"):
            left = AstOr(left, self._and_cond())
        return left

    def _and_cond(self) -> AstCondition:
        left = self._not_cond()
        while self.accept_keyword("and"):
            left = AstAnd(left, self._not_cond())
        return left

    def _not_cond(self) -> AstCondition:
        if self.accept_keyword("not"):
            return AstNot(self._not_cond())
        return self._predicate()

    def _predicate(self) -> AstCondition:
        # A parenthesis may open either a nested condition or an expression;
        # try the condition first and fall back on failure.
        if self.current.type is TokenType.SYMBOL and self.current.value == "(":
            saved = self.pos
            try:
                self.advance()
                inner = self._condition()
                self.expect_symbol(")")
                return inner
            except ParseError:
                self.pos = saved
        left = self._expr()
        token = self.current
        if token.type is TokenType.SYMBOL and token.value in _COMPARE_SYMBOLS:
            op = self.advance().value
            right = self._expr()
            return AstComparison(op=op, left=left, right=right)
        if token.is_keyword("between"):
            self.advance()
            low = self._expr()
            self.expect_keyword("and")
            high = self._expr()
            return AstBetween(expr=left, low=low, high=high)
        if token.is_keyword("in"):
            self.advance()
            self.expect_symbol("(")
            values = [self._expr()]
            while self.accept_symbol(","):
                values.append(self._expr())
            self.expect_symbol(")")
            return AstIn(expr=left, values=tuple(values))
        raise ParseError(f"expected a predicate operator, found {token.value!r}")

    # -- expressions -------------------------------------------------------

    def _expr(self) -> AstExpr:
        left = self._term()
        while self.current.type is TokenType.SYMBOL and self.current.value in ("+", "-"):
            op = self.advance().value
            left = AstArith(op=op, left=left, right=self._term())
        return left

    def _term(self) -> AstExpr:
        left = self._factor()
        while self.current.type is TokenType.SYMBOL and self.current.value in ("*", "/"):
            op = self.advance().value
            left = AstArith(op=op, left=left, right=self._factor())
        return left

    def _factor(self) -> AstExpr:
        if self.accept_symbol("-"):
            return AstNeg(self._factor())
        return self._primary()

    def _primary(self) -> AstExpr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            if "." in token.value:
                return AstLiteral(float(token.value))
            return AstLiteral(int(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return AstLiteral(token.value)
        if token.type is TokenType.PARAM:
            self.advance()
            return AstParameter(token.value)
        if token.is_keyword("date"):
            self.advance()
            literal = self.current
            if literal.type is not TokenType.STRING:
                raise ParseError("expected a date string after DATE")
            self.advance()
            try:
                return AstLiteral(date_to_int(literal.value))
            except ValueError as exc:
                raise ParseError(f"invalid date literal {literal.value!r}") from exc
        if token.type is TokenType.KEYWORD and token.value in _AGG_FUNCS:
            func = self.advance().value
            self.expect_symbol("(")
            if self.accept_symbol("*"):
                if func != "count":
                    raise ParseError(f"{func.upper()}(*) is not valid")
                self.expect_symbol(")")
                return AstAggregate(func=func, arg=None)
            arg = self._expr()
            self.expect_symbol(")")
            return AstAggregate(func=func, arg=arg)
        if token.type is TokenType.IDENT:
            name = self.advance().value
            if self.accept_symbol("("):
                args = []
                if not self.accept_symbol(")"):
                    args.append(self._expr())
                    while self.accept_symbol(","):
                        args.append(self._expr())
                    self.expect_symbol(")")
                return AstFuncCall(name=name, args=tuple(args))
            if self.accept_symbol("."):
                return AstColumn(qualifier=name, name=self.expect_ident())
            return AstColumn(qualifier=None, name=name)
        if self.accept_symbol("("):
            inner = self._expr()
            self.expect_symbol(")")
            return inner
        raise ParseError(f"unexpected token {token.value!r} in expression")


def parse(text: str) -> AstSelect:
    """Parse one SELECT statement from ``text``."""
    return Parser(text).parse_select()
