"""SQL front end: lexer, parser, binder, deparser."""

from .binder import Binder, bind
from .deparser import deparse
from .lexer import Token, TokenType, tokenize
from .parser import Parser, parse

__all__ = ["Binder", "Parser", "Token", "TokenType", "bind", "deparse", "parse", "tokenize"]
