"""Name resolution: raw AST -> bound :class:`~repro.plans.logical.LogicalQuery`.

The binder resolves table and column names against the catalog, substitutes
host-variable parameters (``:name``) with their values while *marking* the
resulting comparisons as parameter-based (the estimator then refuses to use
the value, mirroring compile-time optimization of parameterised queries),
resolves scalar UDF calls against a registry, flattens top-level AND chains
into conjunct lists, splits BETWEEN into two range comparisons, and validates
the aggregate/group-by discipline.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import BindError
from ..plans.logical import (
    AggFunc,
    AggregateExpr,
    AndPredicate,
    ArithExpr,
    BaseRelation,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    FuncExpr,
    InPredicate,
    LogicalQuery,
    NegExpr,
    NotPredicate,
    OrPredicate,
    OrderItem,
    OutputColumn,
    Predicate,
    ScalarExpr,
)
from ..storage.catalog import Catalog
from .ast import (
    AstAggregate,
    AstAnd,
    AstArith,
    AstBetween,
    AstColumn,
    AstComparison,
    AstCondition,
    AstExpr,
    AstFuncCall,
    AstIn,
    AstLiteral,
    AstNeg,
    AstNot,
    AstOr,
    AstParameter,
    AstSelect,
)

UdfRegistry = Mapping[str, Callable]


class _Scope:
    """Alias -> schema mapping with unqualified-name resolution."""

    def __init__(self, catalog: Catalog, relations: list[BaseRelation]) -> None:
        self.aliases: dict[str, list[str]] = {}
        for rel in relations:
            schema = catalog.table(rel.table_name).schema
            self.aliases[rel.alias] = [c.base_name for c in schema]

    def resolve(self, qualifier: str | None, name: str) -> str:
        """Resolve a column reference to its qualified ``alias.column`` form."""
        lowered = name.lower()
        if qualifier is not None:
            alias = qualifier.lower()
            if alias not in self.aliases:
                raise BindError(f"unknown table alias {qualifier!r}")
            if lowered not in (c.lower() for c in self.aliases[alias]):
                raise BindError(f"column {name!r} not found in {qualifier!r}")
            return f"{alias}.{lowered}"
        matches = [
            alias
            for alias, cols in self.aliases.items()
            if lowered in (c.lower() for c in cols)
        ]
        if not matches:
            raise BindError(f"unknown column {name!r}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {name!r}: in tables {sorted(matches)}")
        return f"{matches[0]}.{lowered}"


class Binder:
    """Binds one parsed SELECT statement against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        udfs: UdfRegistry | None = None,
        params: Mapping[str, object] | None = None,
    ) -> None:
        self.catalog = catalog
        self.udfs = dict(udfs or {})
        self.params = dict(params or {})

    # -- entry point -----------------------------------------------------

    def bind(self, stmt: AstSelect) -> LogicalQuery:
        """Produce a :class:`LogicalQuery` or raise :class:`BindError`."""
        relations = self._bind_relations(stmt)
        scope = _Scope(self.catalog, relations)
        predicates: list[Predicate] = []
        if stmt.where is not None:
            predicates = self._bind_conjuncts(stmt.where, scope)
        group_by = tuple(
            scope.resolve(col.qualifier, col.name) for col in stmt.group_by
        )
        output = self._bind_output(stmt, scope, group_by)
        having: list[Predicate] = []
        if stmt.having is not None:
            if not group_by and not any(item.is_aggregate for item in output):
                raise BindError("HAVING requires GROUP BY or aggregates")
            having = self._bind_having_conjuncts(stmt.having, scope, output)
        order_by = self._bind_order(stmt, output)
        return LogicalQuery(
            relations=tuple(relations),
            predicates=tuple(predicates),
            output=tuple(output),
            group_by=group_by,
            having=tuple(having),
            order_by=order_by,
            limit=stmt.limit,
            distinct=stmt.distinct,
        )

    # -- FROM ------------------------------------------------------------

    def _bind_relations(self, stmt: AstSelect) -> list[BaseRelation]:
        relations: list[BaseRelation] = []
        seen: set[str] = set()
        for ref in stmt.tables:
            if ref.name.lower() not in self.catalog:
                raise BindError(f"unknown table {ref.name!r}")
            alias = (ref.alias or ref.name).lower()
            if alias in seen:
                raise BindError(f"duplicate table alias {alias!r}")
            seen.add(alias)
            relations.append(BaseRelation(table_name=ref.name.lower(), alias=alias))
        return relations

    # -- SELECT list -------------------------------------------------------

    def _bind_output(
        self, stmt: AstSelect, scope: _Scope, group_by: tuple[str, ...]
    ) -> list[OutputColumn]:
        output: list[OutputColumn] = []
        used_names: set[str] = set()

        def unique_name(base: str) -> str:
            name = base
            counter = 2
            while name in used_names:
                name = f"{base}_{counter}"
                counter += 1
            used_names.add(name)
            return name

        if stmt.select_star:
            for alias, cols in scope.aliases.items():
                for col in cols:
                    qualified = f"{alias}.{col.lower()}"
                    output.append(
                        OutputColumn(name=unique_name(col.lower()), expr=ColumnExpr(qualified))
                    )
        else:
            for index, item in enumerate(stmt.items):
                expr = self._bind_item_expr(item.expr, scope)
                if item.alias:
                    base = item.alias.lower()
                elif isinstance(expr, ColumnExpr):
                    base = expr.name.rsplit(".", 1)[-1]
                elif isinstance(expr, AggregateExpr):
                    arg_cols = sorted(expr.columns())
                    suffix = arg_cols[0].rsplit(".", 1)[-1] if arg_cols else "all"
                    base = f"{expr.func.value}_{suffix}"
                else:
                    base = f"expr_{index + 1}"
                output.append(OutputColumn(name=unique_name(base), expr=expr))

        has_aggs = any(item.is_aggregate for item in output)
        if group_by or has_aggs:
            group_set = set(group_by)
            for item in output:
                if item.is_aggregate:
                    continue
                if not isinstance(item.expr, ColumnExpr) or item.expr.name not in group_set:
                    raise BindError(
                        f"output {item.name!r} must be an aggregate or a GROUP BY column"
                    )
        return output

    def _bind_item_expr(self, expr: AstExpr, scope: _Scope) -> ScalarExpr | AggregateExpr:
        if isinstance(expr, AstAggregate):
            func = AggFunc(expr.func)
            if expr.arg is None:
                return AggregateExpr(func=func, arg=None)
            arg, __ = self._bind_scalar(expr.arg, scope)
            return AggregateExpr(func=func, arg=arg)
        bound, __ = self._bind_scalar(expr, scope)
        return bound

    # -- ORDER BY ---------------------------------------------------------

    def _bind_order(
        self, stmt: AstSelect, output: list[OutputColumn]
    ) -> tuple[OrderItem, ...]:
        items: list[OrderItem] = []
        by_name = {item.name: item for item in output}
        by_column: dict[str, str] = {}
        for item in output:
            if isinstance(item.expr, ColumnExpr):
                by_column[item.expr.name] = item.name
                by_column.setdefault(item.expr.name.rsplit(".", 1)[-1], item.name)
        for order in stmt.order_by:
            expr = order.expr
            if not isinstance(expr, AstColumn):
                raise BindError("ORDER BY supports only column or alias references")
            candidates = []
            if expr.qualifier:
                candidates.append(f"{expr.qualifier.lower()}.{expr.name.lower()}")
            candidates.append(expr.name.lower())
            resolved = None
            for cand in candidates:
                if cand in by_name:
                    resolved = cand
                    break
                if cand in by_column:
                    resolved = by_column[cand]
                    break
            if resolved is None:
                raise BindError(f"ORDER BY key {expr.name!r} is not in the select list")
            items.append(OrderItem(name=resolved, ascending=order.ascending))
        return tuple(items)

    # -- WHERE -------------------------------------------------------------

    def _bind_conjuncts(self, cond: AstCondition, scope: _Scope) -> list[Predicate]:
        if isinstance(cond, AstAnd):
            return self._bind_conjuncts(cond.left, scope) + self._bind_conjuncts(
                cond.right, scope
            )
        if isinstance(cond, AstBetween):
            expr, has_param = self._bind_scalar(cond.expr, scope)
            low, low_param = self._bind_scalar(cond.low, scope)
            high, high_param = self._bind_scalar(cond.high, scope)
            return [
                Comparison(CompareOp.GE, expr, low, param_based=has_param or low_param),
                Comparison(CompareOp.LE, expr, high, param_based=has_param or high_param),
            ]
        return [self._bind_condition(cond, scope)]

    def _bind_condition(self, cond: AstCondition, scope: _Scope) -> Predicate:
        if isinstance(cond, AstAnd):
            children = self._bind_conjuncts(cond, scope)
            if len(children) == 1:
                return children[0]
            return AndPredicate(tuple(children))
        if isinstance(cond, AstOr):
            children: list[Predicate] = []
            for side in (cond.left, cond.right):
                bound = self._bind_condition(side, scope)
                if isinstance(bound, OrPredicate):
                    children.extend(bound.children)
                else:
                    children.append(bound)
            return OrPredicate(tuple(children))
        if isinstance(cond, AstNot):
            return NotPredicate(self._bind_condition(cond.child, scope))
        if isinstance(cond, AstComparison):
            left, left_param = self._bind_scalar(cond.left, scope)
            right, right_param = self._bind_scalar(cond.right, scope)
            return Comparison(
                CompareOp(cond.op), left, right, param_based=left_param or right_param
            ).normalized()
        if isinstance(cond, AstBetween):
            children = self._bind_conjuncts(cond, scope)
            return AndPredicate(tuple(children))
        if isinstance(cond, AstIn):
            expr, __ = self._bind_scalar(cond.expr, scope)
            values = []
            for value_expr in cond.values:
                bound, __ = self._bind_scalar(value_expr, scope)
                if not isinstance(bound, ConstExpr):
                    raise BindError("IN lists must contain constants")
                values.append(bound.value)
            return InPredicate(expr=expr, values=tuple(values))
        raise BindError(f"unsupported condition {cond!r}")

    # -- HAVING ------------------------------------------------------------

    def _bind_having_conjuncts(
        self, cond: AstCondition, scope: _Scope, output: list[OutputColumn]
    ) -> list[Predicate]:
        """Bind a HAVING condition into conjuncts over *output* columns.

        Aggregate calls must match a select-list aggregate (they become
        references to that output column); bare columns must be select
        aliases or grouped columns present in the output.
        """
        if isinstance(cond, AstAnd):
            return self._bind_having_conjuncts(
                cond.left, scope, output
            ) + self._bind_having_conjuncts(cond.right, scope, output)
        return [self._bind_having_condition(cond, scope, output)]

    def _bind_having_condition(
        self, cond: AstCondition, scope: _Scope, output: list[OutputColumn]
    ) -> Predicate:
        if isinstance(cond, AstAnd):
            children = self._bind_having_conjuncts(cond, scope, output)
            return children[0] if len(children) == 1 else AndPredicate(tuple(children))
        if isinstance(cond, AstOr):
            left = self._bind_having_condition(cond.left, scope, output)
            right = self._bind_having_condition(cond.right, scope, output)
            children = []
            for side in (left, right):
                if isinstance(side, OrPredicate):
                    children.extend(side.children)
                else:
                    children.append(side)
            return OrPredicate(tuple(children))
        if isinstance(cond, AstNot):
            return NotPredicate(self._bind_having_condition(cond.child, scope, output))
        if isinstance(cond, AstComparison):
            left, lp = self._bind_having_scalar(cond.left, scope, output)
            right, rp = self._bind_having_scalar(cond.right, scope, output)
            return Comparison(CompareOp(cond.op), left, right, param_based=lp or rp)
        if isinstance(cond, AstBetween):
            expr, ep = self._bind_having_scalar(cond.expr, scope, output)
            low, lp = self._bind_having_scalar(cond.low, scope, output)
            high, hp = self._bind_having_scalar(cond.high, scope, output)
            return AndPredicate(
                (
                    Comparison(CompareOp.GE, expr, low, param_based=ep or lp),
                    Comparison(CompareOp.LE, expr, high, param_based=ep or hp),
                )
            )
        if isinstance(cond, AstIn):
            expr, __ = self._bind_having_scalar(cond.expr, scope, output)
            values = []
            for value_expr in cond.values:
                bound, __p = self._bind_scalar(value_expr, scope)
                if not isinstance(bound, ConstExpr):
                    raise BindError("IN lists must contain constants")
                values.append(bound.value)
            return InPredicate(expr=expr, values=tuple(values))
        raise BindError(f"unsupported HAVING condition {cond!r}")

    def _bind_having_scalar(
        self, expr: AstExpr, scope: _Scope, output: list[OutputColumn]
    ) -> tuple[ScalarExpr, bool]:
        from .ast import AstColumn as _AstColumn

        if isinstance(expr, AstAggregate):
            bound = self._bind_item_expr(expr, scope)
            for item in output:
                if item.expr == bound:
                    return ColumnExpr(item.name), False
            raise BindError(
                f"HAVING aggregate {bound.sql()} must also appear in the select list"
            )
        if isinstance(expr, _AstColumn):
            candidates = []
            if expr.qualifier is None:
                candidates.append(expr.name.lower())
            by_name = {item.name for item in output}
            for cand in candidates:
                if cand in by_name:
                    return ColumnExpr(cand), False
            qualified = scope.resolve(expr.qualifier, expr.name)
            for item in output:
                if isinstance(item.expr, ColumnExpr) and item.expr.name == qualified:
                    return ColumnExpr(item.name), False
            raise BindError(
                f"HAVING column {expr.name!r} must be a select alias or a "
                "grouped column in the select list"
            )
        if isinstance(expr, AstArith):
            left, lp = self._bind_having_scalar(expr.left, scope, output)
            right, rp = self._bind_having_scalar(expr.right, scope, output)
            return ArithExpr(expr.op, left, right), lp or rp
        if isinstance(expr, AstNeg):
            child, has_param = self._bind_having_scalar(expr.child, scope, output)
            return NegExpr(child), has_param
        # Literals and parameters bind exactly as in WHERE.
        return self._bind_scalar(expr, scope)

    # -- scalar expressions --------------------------------------------------

    def _bind_scalar(self, expr: AstExpr, scope: _Scope) -> tuple[ScalarExpr, bool]:
        """Bind a scalar expression; the bool reports parameter usage inside."""
        if isinstance(expr, AstLiteral):
            return ConstExpr(expr.value), False
        if isinstance(expr, AstColumn):
            return ColumnExpr(scope.resolve(expr.qualifier, expr.name)), False
        if isinstance(expr, AstArith):
            left, lp = self._bind_scalar(expr.left, scope)
            right, rp = self._bind_scalar(expr.right, scope)
            if (
                isinstance(left, ConstExpr)
                and isinstance(right, ConstExpr)
                and left.param is None
                and right.param is None
            ):
                folded = ArithExpr(expr.op, left, right)
                # Constant folding keeps predicates in column-vs-constant
                # form.  Parameter-born constants are left unfolded so a
                # prepared statement can re-plug fresh values later.
                from ..storage.schema import Schema as _S

                value = folded.compile(_S([]))(())
                return ConstExpr(value), lp or rp
            return ArithExpr(expr.op, left, right), lp or rp
        if isinstance(expr, AstNeg):
            child, has_param = self._bind_scalar(expr.child, scope)
            if (
                isinstance(child, ConstExpr)
                and isinstance(child.value, (int, float))
                and child.param is None
            ):
                return ConstExpr(-child.value), has_param
            return NegExpr(child), has_param
        if isinstance(expr, AstParameter):
            if expr.name not in self.params:
                raise BindError(f"no value supplied for parameter :{expr.name}")
            return ConstExpr(self.params[expr.name], param=expr.name), True
        if isinstance(expr, AstFuncCall):
            name = expr.name.lower()
            if name not in self.udfs:
                raise BindError(f"unknown function {expr.name!r}")
            args = []
            has_param = False
            for arg in expr.args:
                bound, param = self._bind_scalar(arg, scope)
                args.append(bound)
                has_param = has_param or param
            return FuncExpr(name=name, fn=self.udfs[name], args=tuple(args)), has_param
        if isinstance(expr, AstAggregate):
            raise BindError("aggregates are only allowed in the SELECT list")
        raise BindError(f"unsupported expression {expr!r}")


def bind(
    stmt: AstSelect,
    catalog: Catalog,
    udfs: UdfRegistry | None = None,
    params: Mapping[str, object] | None = None,
) -> LogicalQuery:
    """Convenience wrapper: bind ``stmt`` against ``catalog``."""
    return Binder(catalog, udfs=udfs, params=params).bind(stmt)
