"""Deparser: bound :class:`~repro.plans.logical.LogicalQuery` -> SQL text.

Dynamic Re-Optimization's plan-modification step regenerates SQL for the
*remainder* of a query in terms of a temporary table and re-submits it to
the parser/optimizer like a regular query (paper Figure 6).  The deparser is
what performs that regeneration; it is also handy for debugging and for
round-trip testing of the parser/binder.

Output uses explicit ``alias.column`` references everywhere, so the result
always re-binds unambiguously.
"""

from __future__ import annotations

from ..plans.logical import LogicalQuery


def deparse(query: LogicalQuery) -> str:
    """Render a bound query back to executable SQL text."""
    parts: list[str] = []
    select_list = ", ".join(item.sql() for item in query.output)
    keyword = "SELECT DISTINCT" if query.distinct else "SELECT"
    parts.append(f"{keyword} {select_list}")
    from_list = ", ".join(rel.sql() for rel in query.relations)
    parts.append(f"FROM {from_list}")
    if query.predicates:
        where = " AND ".join(p.sql() for p in query.predicates)
        parts.append(f"WHERE {where}")
    if query.group_by:
        parts.append("GROUP BY " + ", ".join(query.group_by))
    if query.having:
        parts.append("HAVING " + " AND ".join(p.sql() for p in query.having))
    if query.order_by:
        parts.append("ORDER BY " + ", ".join(item.sql() for item in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)
