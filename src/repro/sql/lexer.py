"""A hand-written lexer for the SQL subset.

Produces a flat list of :class:`Token` objects.  Keywords are
case-insensitive; identifiers preserve case but compare case-insensitively
downstream.  Supported literal forms: integers, decimals, single-quoted
strings (with ``''`` escaping), ``DATE 'YYYY-MM-DD'`` (handled by the
parser), and host-variable parameters ``:name``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import LexerError

KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "having", "limit",
    "and", "or", "not", "in", "between", "as", "asc", "desc", "date",
    "sum", "avg", "count", "min", "max", "distinct",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PARAM = "param"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"


_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", ".")


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            # SQL line comment.
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise LexerError("unterminated string literal", start)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            continue
        if ch == ":":
            start = i
            i += 1
            if i >= n or not (text[i].isalpha() or text[i] == "_"):
                raise LexerError("expected parameter name after ':'", start)
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token(TokenType.PARAM, text[start + 1 : i], start))
            continue
        matched = False
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                value = "<>" if sym == "!=" else sym
                tokens.append(Token(TokenType.SYMBOL, value, i))
                i += len(sym)
                matched = True
                break
        if not matched:
            raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
