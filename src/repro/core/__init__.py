"""Dynamic Re-Optimization: the paper's primary contribution."""

from .improve import (
    apply_improved_estimates,
    blocking_consumer,
    observed_profiles,
    remaining_cost,
)
from .inaccuracy import InaccuracyAnalysis, InaccuracyPotential
from .modes import DynamicMode
from .parametric import (
    ParametricOptimizer,
    ParametricPlan,
    Scenario,
    actual_parameter_selectivity,
    choose_plan,
    has_parameter_predicates,
)
from .remainder import RemainderQuery, build_remainder, temp_table_stats
from .reoptimizer import DynamicReoptimizer, ReoptimizationEvent
from .scia import CandidateStatistic, SciaResult, enumerate_candidates, insert_collectors
from .triggers import TriggerDecision, accept_new_plan, should_consider_reoptimization

__all__ = [
    "CandidateStatistic",
    "DynamicMode",
    "DynamicReoptimizer",
    "InaccuracyAnalysis",
    "InaccuracyPotential",
    "ParametricOptimizer",
    "ParametricPlan",
    "Scenario",
    "RemainderQuery",
    "ReoptimizationEvent",
    "SciaResult",
    "TriggerDecision",
    "accept_new_plan",
    "actual_parameter_selectivity",
    "choose_plan",
    "has_parameter_predicates",
    "apply_improved_estimates",
    "blocking_consumer",
    "build_remainder",
    "enumerate_candidates",
    "insert_collectors",
    "observed_profiles",
    "remaining_cost",
    "should_consider_reoptimization",
    "temp_table_stats",
]
