"""The Dynamic Re-Optimization controller.

This is the component the paper adds to Paradise's dispatcher (Figure 9).
Whenever a statistics collector completes, the controller:

1. folds the observed statistics into the current plan's annotations
   (*improved estimates*, section 2.2);
2. re-invokes the Memory Manager with the improved demands for the
   operators that have not started executing (*dynamic resource
   re-allocation*, section 2.3);
3. applies the Equation 1/2 gates and, if they pass, re-invokes the query
   optimizer on the *remainder* of the query expressed over a temporary
   table; the new plan is adopted only if its total estimated time —
   including the work already performed, the re-optimization time and the
   materialisation overhead — beats the improved estimate for the current
   plan (*query plan modification*, section 2.4).

Which of steps 2/3 run is governed by the :class:`~repro.core.modes.DynamicMode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..config import ReoptimizationParameters
from ..errors import MemoryGrantError
from ..executor.collector import ObservedStatistics
from ..executor.memory import MemoryManager
from ..executor.runtime import PlanSwitchDirective, RuntimeContext
from ..optimizer.calibration import OptimizerCalibration
from ..optimizer.cost_model import pages_for
from ..optimizer.optimizer import Optimizer
from ..plans.logical import LogicalQuery
from ..plans.physical import (
    BlockNLJoinNode,
    HashJoinNode,
    PlanNode,
    StatsCollectorNode,
)
from ..sql.binder import bind
from ..sql.deparser import deparse
from ..sql.parser import parse
from .improve import (
    apply_improved_estimates,
    blocking_consumer,
    hash_join_probe_remaining,
    remaining_cost,
)
from .modes import DynamicMode
from .remainder import build_remainder, temp_table_stats
from .scia import insert_collectors
from .triggers import TriggerDecision, accept_new_plan, should_consider_reoptimization


@dataclass
class ReoptimizationEvent:
    """One controller decision, for profiles and experiments."""

    collector_node_id: int
    action: str  # "none" | "realloc" | "switch" | "switch-rejected"
    clock_time: float
    trigger: TriggerDecision | None = None
    t_new_total: float | None = None
    reallocation_changed: bool = False
    detail: str = ""


class DynamicReoptimizer:
    """Execution controller implementing the paper's algorithm."""

    def __init__(
        self,
        ctx: RuntimeContext,
        optimizer: Optimizer,
        memory_manager: MemoryManager,
        query: LogicalQuery,
        mode: DynamicMode = DynamicMode.FULL,
        calibration: OptimizerCalibration | None = None,
        params: ReoptimizationParameters | None = None,
        udfs: Mapping[str, Callable] | None = None,
        run_scia_on_new_plans: bool = True,
    ) -> None:
        self.ctx = ctx
        self.optimizer = optimizer
        self.memory_manager = memory_manager
        self.mode = mode
        self.calibration = calibration or OptimizerCalibration()
        self.params = params or ctx.config.reopt
        self.udfs = dict(udfs or {})
        self.run_scia_on_new_plans = run_scia_on_new_plans
        self.events: list[ReoptimizationEvent] = []
        self.query_start_clock = ctx.clock.now
        self.current_plan: PlanNode | None = None
        self.current_query = query
        #: Optimizer-estimate baseline for the currently adopted plan
        #: (elapsed time at adoption + the plan's estimated total cost).
        self.plan_optimizer_total = 0.0
        self._queries_by_plan: dict[int, LogicalQuery] = {}

    # -- dispatcher hooks ---------------------------------------------------

    def set_current_plan(self, plan: PlanNode) -> None:
        """Adopt a plan (called by the dispatcher on start and after switches)."""
        self.current_plan = plan
        stashed = self._queries_by_plan.pop(id(plan), None)
        if stashed is not None:
            self.current_query = stashed
        elapsed = self.ctx.clock.now - self.query_start_clock
        self.plan_optimizer_total = elapsed + plan.est.total_cost

    def on_collector_complete(
        self, node: StatsCollectorNode, observed: ObservedStatistics
    ) -> None:
        """React to a completed statistics collector (the paper's Figure 9 loop)."""
        plan = self.current_plan
        if plan is None or plan.find(node.node_id) is None:
            return
        elapsed = self.ctx.clock.now - self.query_start_clock
        apply_improved_estimates(plan, self.optimizer, self.ctx)
        consumer = blocking_consumer(plan, node.node_id)
        remaining = remaining_cost(
            plan, self.ctx, self.optimizer.cost_model, in_flight=consumer
        )
        t_cur_improved = elapsed + remaining
        event = ReoptimizationEvent(
            collector_node_id=node.node_id,
            action="none",
            clock_time=self.ctx.clock.now,
        )

        if self.mode.allows_memory_reallocation:
            event.reallocation_changed = self._reallocate(plan)
            if event.reallocation_changed:
                event.action = "realloc"

        if self.mode.allows_plan_modification:
            self._maybe_modify_plan(plan, node, consumer, t_cur_improved, event)

        self.events.append(event)

        tracer = self.ctx.tracer
        if tracer is not None:
            # The triggering estimate delta: what the optimizer predicted for
            # this collection point (snapshotted at plan adoption, before
            # improved estimates overwrote node.est) vs. what was observed.
            estimated_rows = tracer.estimated_rows(node.node_id, node.est.rows)
            args: dict = {
                "collector_node_id": node.node_id,
                "action": event.action,
                "estimated_rows": round(estimated_rows, 1),
                "observed_rows": observed.row_count,
                "estimate_delta_rows": round(observed.row_count - estimated_rows, 1),
                "t_cur_optimizer": round(self.plan_optimizer_total, 6),
                "t_cur_improved": round(t_cur_improved, 6),
                "reallocation_changed": event.reallocation_changed,
            }
            if event.trigger is not None:
                args["trigger_consider"] = event.trigger.consider
                args["trigger_reason"] = event.trigger.reason
            if event.t_new_total is not None:
                args["t_new_total"] = round(event.t_new_total, 6)
            if event.detail:
                args["detail"] = event.detail
            tracer.instant("reopt-decision", "reopt", **args)

    # -- memory re-allocation -------------------------------------------------

    def _reallocate(self, plan: PlanNode) -> bool:
        fixed = {
            node_id: pages
            for node_id, pages in self.ctx.allocation.items()
            if node_id in self.ctx.memory_committed
        }
        floors = {
            node_id: pages
            for node_id, pages in self.ctx.allocation.items()
            if node_id not in self.ctx.memory_committed
        }
        try:
            new_allocation = self.memory_manager.allocate(
                plan, fixed=fixed, floors=floors,
                tracer=self.ctx.tracer, reason="reallocate",
            )
        except MemoryGrantError:
            return False
        changed = any(
            self.ctx.allocation.get(node_id) != pages
            for node_id, pages in new_allocation.items()
        )
        if changed:
            self.ctx.allocation.update(new_allocation)
            self.ctx.reallocations += 1
        return changed

    # -- plan modification --------------------------------------------------------

    def _feedback_risk(self, consumer: PlanNode) -> float:
        """Cross-query misestimation risk of the fragment being checked.

        Consults the feedback repository (when the engine carries one) for
        the join boundary the trigger would cut at: a fragment whose
        estimates went bad in past executions gets a lower Equation 2
        threshold.  Always 0.0 with feedback disabled, keeping the paper's
        gates untouched.
        """
        feedback = getattr(self.optimizer.estimator, "feedback", None)
        if feedback is None:
            return 0.0
        from ..observe.feedback import fragment_signature

        return feedback.risk_score(
            fragment_signature(consumer), self.ctx.catalog.stats_epoch
        )

    def _maybe_modify_plan(
        self,
        plan: PlanNode,
        node: StatsCollectorNode,
        consumer: PlanNode | None,
        t_cur_improved: float,
        event: ReoptimizationEvent,
    ) -> None:
        if not isinstance(consumer, (HashJoinNode, BlockNLJoinNode)):
            event.detail = "no join boundary to cut at"
            return
        cut_aliases = consumer.base_aliases
        remaining_relations = [
            rel for rel in self.current_query.relations if rel.alias not in cut_aliases
        ]
        if not remaining_relations:
            event.detail = "no relations remain to re-join"
            return
        t_opt_estimated = self.calibration.estimated_units(1 + len(remaining_relations))
        decision = should_consider_reoptimization(
            t_cur_optimizer=self.plan_optimizer_total,
            t_cur_improved=t_cur_improved,
            t_opt_estimated=t_opt_estimated,
            params=self.params,
            feedback_risk=self._feedback_risk(consumer),
        )
        event.trigger = decision
        if not decision.consider:
            event.detail = decision.reason
            return

        # Pay for the re-optimization itself (calibrated, deterministic).
        self.ctx.clock.charge_optimizer(t_opt_estimated)

        temp_name = self.ctx.temp_manager.next_name()
        remainder = build_remainder(self.current_query, consumer, temp_name)
        cut_profile = consumer.est.profile
        stats = temp_table_stats(
            temp_name, cut_profile, remainder.temp_schema, self.ctx.catalog.page_size
        )
        temp_table = self.ctx.temp_manager.create_empty(
            remainder.temp_schema, stats=stats, name=temp_name
        )

        # The paper's round trip: deparse to SQL, re-parse, re-bind, re-optimize.
        remainder_sql = deparse(remainder.query)
        rebound = bind(parse(remainder_sql), self.ctx.catalog, udfs=self.udfs)
        new_plan = self.optimizer.optimize(rebound)
        if self.run_scia_on_new_plans:
            insert_collectors(
                new_plan,
                self.ctx.catalog,
                self.ctx.config,
                feedback=getattr(self.optimizer.estimator, "feedback", None),
            )
        try:
            new_allocation = self.memory_manager.allocate(
                new_plan, tracer=self.ctx.tracer, reason="switch-plan"
            )
        except MemoryGrantError:
            new_allocation = {}
        self.optimizer.annotator(allocation=new_allocation).annotate(new_plan)

        elapsed = self.ctx.clock.now - self.query_start_clock
        cut_pages = pages_for(
            cut_profile.rows, cut_profile.row_bytes, self.ctx.catalog.page_size
        )
        t_materialize = self.optimizer.cost_model.materialize(cut_pages).total_units(
            self.optimizer.cost_model.params
        )
        if isinstance(consumer, HashJoinNode):
            t_finish_cut = hash_join_probe_remaining(
                consumer,
                self.optimizer.cost_model,
                self.ctx.catalog.page_size,
                self.ctx.memory_for(consumer),
            )
        else:
            t_finish_cut = consumer.est.op_cost
        t_new_total = elapsed + t_finish_cut + t_materialize + new_plan.est.total_cost
        event.t_new_total = t_new_total

        if not accept_new_plan(t_new_total, t_cur_improved):
            self.ctx.temp_manager.drop(temp_name)
            event.action = "switch-rejected"
            event.detail = (
                f"new plan total {t_new_total:.1f} >= improved estimate "
                f"{t_cur_improved:.1f}"
            )
            return

        directive = PlanSwitchDirective(
            cut_node_id=consumer.node_id,
            temp_table=temp_table,
            new_plan=new_plan,
            new_allocation=new_allocation,
            remainder_sql=remainder_sql,
            reason=decision.reason,
        )
        self._queries_by_plan[id(new_plan)] = rebound
        # The observed statistics just proved the optimizer's catalog-derived
        # estimates wrong badly enough to abandon the running plan: fold that
        # knowledge into the statistics epoch so the plan cache never serves
        # a plan optimized under the discredited estimates again.
        self.ctx.catalog.bump_stats_epoch()
        self.ctx.request_switch(directive)
        event.action = "switch"
        event.detail = (
            f"switching: new total {t_new_total:.1f} < improved "
            f"{t_cur_improved:.1f}; remainder: {remainder_sql}"
        )
