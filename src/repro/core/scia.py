"""The statistics-collectors insertion algorithm (SCIA, paper section 2.5).

Runs as a post-processing phase after the query optimizer (paper Figure 9):

1. Enumerate the *candidate points* — edges into blocking operator inputs
   (hash-join build sides, block-NL inners, sort and aggregate inputs).
   These are where pipelines naturally break, so statistics gathered there
   are ready before the downstream operators start.  Points whose input is a
   bare base-table scan are skipped (the catalog already describes them).
2. At every candidate point list the *potentially useful statistics*: a
   histogram on any attribute that participates in a join or selection
   predicate evaluated later in the plan; a distinct count on any attribute
   set that feeds a GROUP BY later in the plan.
3. Rank candidates by effectiveness: first by inaccuracy potential (see
   :mod:`repro.core.inaccuracy`), then by the fraction of the plan they
   affect (operators at or above the first use).
4. Delete the least effective candidates until the estimated collection
   cost fits within ``mu * T_cur_plan,optimizer``.
5. Splice collector operators into the plan.  Cardinality, tuple size and
   min/max tracking is free-ish and always on, so every candidate point
   keeps at least a bare collector.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..config import EngineConfig
from ..plans.physical import (
    BlockNLJoinNode,
    CollectorSpec,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    PlanNode,
    SeqScanNode,
    StatsCollectorNode,
)
from ..storage.catalog import Catalog
from ..executor.segments import blocking_input_edges
from .inaccuracy import InaccuracyAnalysis, InaccuracyPotential

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observe.feedback import FeedbackRepository


@dataclass(frozen=True)
class CandidateStatistic:
    """One potentially useful run-time statistic."""

    parent_id: int
    child_index: int
    kind: str  # "histogram" or "distinct"
    columns: tuple[str, ...]
    potential: InaccuracyPotential
    affected_fraction: float
    estimated_cost: float
    first_use_id: int

    @property
    def effectiveness_key(self) -> tuple[int, float]:
        """Sort key: higher means more effective."""
        return (self.potential.value, self.affected_fraction)


@dataclass
class SciaResult:
    """Outcome of one SCIA run."""

    plan: PlanNode
    kept: list[CandidateStatistic]
    dropped: list[CandidateStatistic]
    collector_points: int
    budget: float

    @property
    def kept_cost(self) -> float:
        """Total estimated collection cost of the surviving statistics."""
        return sum(c.estimated_cost for c in self.kept)


def _parent_map(plan: PlanNode) -> dict[int, PlanNode]:
    parents: dict[int, PlanNode] = {}
    for node in plan.walk():
        for child in node.children:
            parents[child.node_id] = node
    return parents


def _ancestors(plan: PlanNode, node: PlanNode) -> list[PlanNode]:
    """Chain from ``node`` (exclusive) up to the root (inclusive)."""
    parents = _parent_map(plan)
    chain: list[PlanNode] = []
    current = parents.get(node.node_id)
    while current is not None:
        chain.append(current)
        current = parents.get(current.node_id)
    return chain


def _columns_used_by(node: PlanNode) -> frozenset[str]:
    """Join/selection attributes an operator consults."""
    columns: set[str] = set()
    if isinstance(node, FilterNode):
        for pred in node.predicates:
            columns |= pred.columns()
    elif isinstance(node, HashJoinNode):
        for left_col, right_col in node.key_pairs:
            columns.add(left_col)
            columns.add(right_col)
        for pred in node.residual:
            columns |= pred.columns()
    elif isinstance(node, IndexNLJoinNode):
        columns.add(node.outer_column)
        columns.add(f"{node.inner_alias}.{node.inner_column}")
        for pred in node.residual:
            columns |= pred.columns()
    elif isinstance(node, IndexScanNode):
        for pred in node.bound_predicates:
            columns |= pred.columns()
    return frozenset(columns)


def enumerate_candidates(
    plan: PlanNode, catalog: Catalog, config: EngineConfig
) -> tuple[list[CandidateStatistic], list[tuple[PlanNode, int]]]:
    """All potentially useful statistics and all candidate collector points."""
    analysis = InaccuracyAnalysis(plan, catalog)
    total_nodes = sum(1 for __ in plan.walk())
    candidates: list[CandidateStatistic] = []
    points: list[tuple[PlanNode, int]] = []
    per_stat_cost = config.cost.cpu_stats_per_statistic

    for parent, child_index in blocking_input_edges(plan):
        child = parent.children[child_index]
        if isinstance(child, (SeqScanNode, IndexScanNode)):
            continue  # base-table statistics are already in the catalog
        if isinstance(child, StatsCollectorNode):
            continue  # already instrumented
        ancestors = [parent] + _ancestors(plan, parent)
        if not any(
            isinstance(a, (HashJoinNode, IndexNLJoinNode, BlockNLJoinNode))
            for a in ancestors
        ):
            # Nothing above this point can be re-optimized or re-allocated:
            # skip collection entirely (the paper's section 2.5 requirement
            # that simple queries pay no overhead).
            continue
        points.append((parent, child_index))
        available = set(child.schema.names)
        numeric = {
            col.name for col in child.schema.columns if col.dtype.is_numeric
        }
        seen_hist: set[str] = set()
        for depth, ancestor in enumerate(ancestors):
            used = _columns_used_by(ancestor)
            affected = (len(ancestors) - depth) / total_nodes
            for column in sorted(used & available & numeric):
                if column in seen_hist:
                    continue
                seen_hist.add(column)
                candidates.append(
                    CandidateStatistic(
                        parent_id=parent.node_id,
                        child_index=child_index,
                        kind="histogram",
                        columns=(column,),
                        potential=analysis.histogram_level(child, column),
                        affected_fraction=affected,
                        estimated_cost=child.est.rows * per_stat_cost,
                        first_use_id=ancestor.node_id,
                    )
                )
            if isinstance(ancestor, HashAggregateNode) and ancestor.group_by:
                group_cols = tuple(sorted(ancestor.group_by))
                if set(group_cols) <= available:
                    candidates.append(
                        CandidateStatistic(
                            parent_id=parent.node_id,
                            child_index=child_index,
                            kind="distinct",
                            columns=group_cols,
                            potential=analysis.distinct_level(child, group_cols),
                            affected_fraction=affected,
                            estimated_cost=child.est.rows * per_stat_cost,
                            first_use_id=ancestor.node_id,
                        )
                    )
    return candidates, points


def insert_collectors(
    plan: PlanNode,
    catalog: Catalog,
    config: EngineConfig,
    feedback: "FeedbackRepository | None" = None,
) -> SciaResult:
    """Run the SCIA: choose statistics within budget and splice collectors.

    The budget is ``mu`` times the optimizer's estimated execution time of
    the (annotated) plan, per the paper.  The plan is modified in place;
    callers should re-annotate it afterwards so collector nodes carry
    estimates too.

    When a feedback repository is supplied, candidates at points whose
    fragment was historically misestimated (a recorded Q-error at or above
    the repository threshold) are promoted to HIGH inaccuracy potential
    before the budget cut — the engine arms collectors most aggressively
    exactly where its estimates have been wrong before.  With no repository
    (or no bad records) the ranking is byte-identical to the paper's.
    """
    candidates, points = enumerate_candidates(plan, catalog, config)
    if feedback is not None and candidates:
        from ..observe.feedback import fragment_signature

        memo: dict[int, str] = {}
        risky_points = set()
        for parent, child_index in points:
            signature = fragment_signature(parent.children[child_index], memo)
            if feedback.risky(signature):
                risky_points.add((parent.node_id, child_index))
        if risky_points:
            promoted = 0
            upgraded: list[CandidateStatistic] = []
            for candidate in candidates:
                point = (candidate.parent_id, candidate.child_index)
                if (
                    point in risky_points
                    and candidate.potential is not InaccuracyPotential.HIGH
                ):
                    candidate = replace(
                        candidate, potential=InaccuracyPotential.HIGH
                    )
                    promoted += 1
                upgraded.append(candidate)
            candidates = upgraded
            if promoted:
                feedback.count_collectors_armed(promoted)
    budget = config.reopt.mu * plan.est.total_cost
    ordered = sorted(candidates, key=lambda c: c.effectiveness_key)
    total_cost = sum(c.estimated_cost for c in ordered)
    dropped: list[CandidateStatistic] = []
    while ordered and total_cost > budget:
        least_effective = ordered.pop(0)
        dropped.append(least_effective)
        total_cost -= least_effective.estimated_cost
    kept = ordered

    specs: dict[tuple[int, int], dict[str, list]] = {}
    for candidate in kept:
        point = (candidate.parent_id, candidate.child_index)
        spec = specs.setdefault(point, {"histograms": [], "distincts": []})
        if candidate.kind == "histogram":
            spec["histograms"].append(candidate.columns[0])
        else:
            spec["distincts"].append(candidate.columns)

    # Inaccuracy ranking for attribution (EXPLAIN ANALYZE reports whether
    # the potential assigned here predicted where the estimates went bad).
    # Built before splicing: the analysis walks the un-instrumented plan.
    analysis = InaccuracyAnalysis(plan, catalog)
    point_potentials = {
        (parent.node_id, child_index): analysis.output_level(
            parent.children[child_index]
        )
        for parent, child_index in points
    }

    def _describe(candidate: CandidateStatistic) -> str:
        return (
            f"{candidate.kind}({', '.join(candidate.columns)})"
            f"@{candidate.potential.name.lower()}"
        )

    for parent, child_index in points:
        point = (parent.node_id, child_index)
        chosen = specs.get(point, {"histograms": [], "distincts": []})
        spec = CollectorSpec(
            histogram_columns=tuple(dict.fromkeys(chosen["histograms"])),
            distinct_column_sets=tuple(dict.fromkeys(chosen["distincts"])),
        )
        child = parent.children[child_index]
        collector = StatsCollectorNode(child, spec)
        collector.scia_potential = point_potentials[point]
        collector.scia_kept = tuple(
            _describe(c) for c in kept
            if (c.parent_id, c.child_index) == point
        )
        collector.scia_dropped = tuple(
            _describe(c) for c in dropped
            if (c.parent_id, c.child_index) == point
        )
        children = list(parent.children)
        children[child_index] = collector
        parent.children = tuple(children)

    return SciaResult(
        plan=plan,
        kept=kept,
        dropped=dropped,
        collector_points=len(points),
        budget=budget,
    )
