"""Remainder-query construction (paper Figure 6).

When plan modification is accepted, the output of the cut operator is
redirected to a temporary table and "SQL corresponding to the remainder of
the query is generated in terms of this temporary file.  This modified query
is then re-submitted to the parser/optimizer like a regular query."

:func:`build_remainder` performs the generation: it determines which base
relations and predicates the cut subtree already handled, renames every
reference to a cut-subtree column to the temp table's column
(``alias.col`` -> ``temp.alias__col``), and assembles the remainder
:class:`~repro.plans.logical.LogicalQuery`.  The engine then deparses it to
SQL text and round-trips through parse/bind — the full paper pipeline — with
the temp table registered in the catalog carrying the *observed* statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..plans.logical import BaseRelation, LogicalQuery
from ..plans.physical import PlanNode
from ..plans.rewrite import rename_output, rename_predicate
from ..stats.estimator import RelProfile
from ..stats.table_stats import ColumnStats, TableStats
from ..storage.schema import Schema


@dataclass
class RemainderQuery:
    """Everything needed to resume a query from a materialised cut."""

    query: LogicalQuery
    temp_name: str
    temp_schema: Schema
    rename_map: dict[str, str]
    cut_aliases: frozenset[str]


def temp_column_name(qualified: str) -> str:
    """Map ``alias.col`` to a legal bare column name for the temp table."""
    return qualified.replace(".", "__")


def build_remainder(
    query: LogicalQuery,
    cut_node: PlanNode,
    temp_name: str,
) -> RemainderQuery:
    """Construct the remainder of ``query`` over a temp table replacing
    the subtree rooted at ``cut_node``."""
    cut_aliases = cut_node.base_aliases
    if not cut_aliases:
        raise ReproError("cut node covers no base relations")

    temp_schema = cut_node.schema.renamed(
        {name: temp_column_name(name) for name in cut_node.schema.names}
    )
    rename_map = {
        name: f"{temp_name}.{temp_column_name(name)}"
        for name in cut_node.schema.names
    }

    remaining_relations = tuple(
        rel for rel in query.relations if rel.alias not in cut_aliases
    )
    relations = (BaseRelation(table_name=temp_name, alias=temp_name),) + remaining_relations

    remaining_predicates = tuple(
        rename_predicate(p, rename_map)
        for p in query.predicates
        if not p.qualifiers() <= cut_aliases
    )
    output = tuple(rename_output(item, rename_map) for item in query.output)
    group_by = tuple(rename_map.get(col, col) for col in query.group_by)

    remainder = LogicalQuery(
        relations=relations,
        predicates=remaining_predicates,
        output=output,
        group_by=group_by,
        # HAVING predicates reference output-column names, which survive the
        # cut unchanged; same for DISTINCT.
        having=query.having,
        order_by=query.order_by,
        limit=query.limit,
        distinct=query.distinct,
    )
    return RemainderQuery(
        query=remainder,
        temp_name=temp_name,
        temp_schema=temp_schema,
        rename_map=rename_map,
        cut_aliases=cut_aliases,
    )


def temp_table_stats(
    temp_name: str,
    profile: RelProfile,
    temp_schema: Schema,
    page_size: int,
) -> TableStats:
    """Catalog statistics for the temp table, from the cut's observed profile.

    Column statistics keep everything the collectors learned (histograms,
    distinct counts, min/max) under the temp table's column names, so the
    re-invoked optimizer estimates the remainder from observed data.
    """
    columns: dict[str, ColumnStats] = {}
    for qualified, stats in profile.columns.items():
        base = temp_column_name(qualified)
        if temp_schema.has_column(base):
            columns[base] = stats.renamed(base)
    rows = max(1.0, profile.rows)
    return TableStats(
        table_name=temp_name,
        row_count=rows,
        page_count=float(max(1, temp_schema.page_count(int(rows), page_size))),
        avg_row_bytes=float(temp_schema.row_bytes),
        columns=columns,
    )
