"""Run modes for Dynamic Re-Optimization.

The paper's isolation experiment (Figure 11) runs the algorithm "in two
different modes": one using improved statistics solely for memory
management, one using only plan modification.  Together with OFF (the
"Normal" bars of Figure 10) and FULL, these form the mode enum every
experiment sweeps over.
"""

from __future__ import annotations

import enum


class DynamicMode(enum.Enum):
    """Which dynamic re-optimization facilities are active."""

    #: Conventional execution: no collectors, no re-optimization ("Normal").
    OFF = "off"
    #: Collect statistics; only re-allocate memory (Figure 11, mode 1).
    MEMORY_ONLY = "memory-only"
    #: Collect statistics; only modify the plan (Figure 11, mode 2).
    PLAN_ONLY = "plan-only"
    #: The complete algorithm ("Re-Optimized").
    FULL = "full"

    @property
    def collects_statistics(self) -> bool:
        """Whether statistics collectors are inserted into plans."""
        return self is not DynamicMode.OFF

    @property
    def allows_memory_reallocation(self) -> bool:
        """Whether improved estimates may re-allocate memory."""
        return self in (DynamicMode.MEMORY_ONLY, DynamicMode.FULL)

    @property
    def allows_plan_modification(self) -> bool:
        """Whether improved estimates may trigger plan switches."""
        return self in (DynamicMode.PLAN_ONLY, DynamicMode.FULL)
