"""Inaccuracy-potential analysis (paper section 2.5).

The statistics-collectors insertion algorithm assigns each candidate
statistic an *inaccuracy potential* — low, medium or high — estimating how
likely the corresponding optimizer estimate is to be wrong.  Base-table
levels come from the catalog (what kind of histogram exists, whether there
has been update activity); levels then propagate up the plan by the paper's
rule set:

* serial-class histogram (MaxDiff / end-biased) -> LOW; equi-width or
  equi-depth -> MEDIUM; no histogram -> HIGH;
* distinct counts: LOW for base-table attributes with catalog estimates,
  HIGH at every intermediate point;
* significant update activity bumps every level by one;
* selections with a simple predicate preserve their input's level; ones
  involving two or more attributes of the relation bump it one level
  (uncaptured correlation); ones involving user-defined functions (or,
  in our engine, host-variable parameters) are HIGH;
* equi-joins on key attributes preserve the max of the input levels;
  non-key equi-joins bump it one level; non-equi-joins are HIGH;
* aggregate outputs carry the level of the grouping columns' distinct
  estimate in their input.
"""

from __future__ import annotations

import enum

from ..plans.logical import Comparison, Predicate, qualifier_of
from ..plans.physical import (
    BlockNLJoinNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    StatsCollectorNode,
)
from ..stats.histogram import HistogramKind
from ..storage.catalog import Catalog


class InaccuracyPotential(enum.IntEnum):
    """How likely an optimizer estimate is to be wrong."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3

    def bumped(self) -> "InaccuracyPotential":
        """One level higher (saturating at HIGH)."""
        return InaccuracyPotential(min(self.value + 1, InaccuracyPotential.HIGH.value))


def _histogram_level(kind: HistogramKind | None) -> InaccuracyPotential:
    if kind is None:
        return InaccuracyPotential.HIGH
    if kind.is_serial_class:
        return InaccuracyPotential.LOW
    return InaccuracyPotential.MEDIUM


class InaccuracyAnalysis:
    """Per-node inaccuracy levels for one physical plan.

    ``output_level(node)`` is the potential that the node's output-size
    estimate is inaccurate; ``histogram_level(node, column)`` the potential
    for the value distribution of one column at that node's output;
    ``distinct_level(node, columns)`` the potential for a distinct-count
    estimate there.
    """

    def __init__(self, plan: PlanNode, catalog: Catalog) -> None:
        self.plan = plan
        self.catalog = catalog
        self._output: dict[int, InaccuracyPotential] = {}
        self._columns: dict[int, dict[str, InaccuracyPotential]] = {}
        self._analyze(plan)

    # -- public API --------------------------------------------------------

    def output_level(self, node: PlanNode) -> InaccuracyPotential:
        """Inaccuracy potential of the node's cardinality/size estimate."""
        return self._output[node.node_id]

    def histogram_level(self, node: PlanNode, column: str) -> InaccuracyPotential:
        """Inaccuracy potential of a histogram-backed estimate for ``column``."""
        base = self._columns[node.node_id].get(column, InaccuracyPotential.HIGH)
        return max(base, self._output[node.node_id])

    def distinct_level(self, node: PlanNode, columns: tuple[str, ...]) -> InaccuracyPotential:
        """Inaccuracy potential of a distinct-count estimate at this node.

        Per the paper's rule, only base-table attributes with catalog
        estimates are LOW; every intermediate point is HIGH.
        """
        if isinstance(node, (SeqScanNode, IndexScanNode)):
            stats = self.catalog.stats_for(node.table_name)
            if all(stats.column(c.rsplit(".", 1)[-1]) is not None for c in columns):
                level = InaccuracyPotential.LOW
                if stats.significant_update_activity:
                    level = level.bumped()
                return level
        return InaccuracyPotential.HIGH

    # -- analysis ----------------------------------------------------------

    def _analyze(self, node: PlanNode) -> None:
        for child in node.children:
            self._analyze(child)
        if isinstance(node, SeqScanNode):
            self._scan_levels(node, node.table_name, node.alias)
        elif isinstance(node, IndexScanNode):
            self._scan_levels(node, node.table_name, node.alias)
            bound_level = self._predicate_level(node, node.bound_predicates)
            self._output[node.node_id] = max(self._output[node.node_id], bound_level)
        elif isinstance(node, FilterNode):
            self._passthrough(node, node.child)
            level = self._predicate_level(node.child, node.predicates)
            self._output[node.node_id] = max(
                self._output[node.child.node_id], level
            )
        elif isinstance(node, StatsCollectorNode):
            self._passthrough(node, node.child)
        elif isinstance(node, (ProjectNode, SortNode, LimitNode)):
            self._passthrough(node, node.children[0])
        elif isinstance(node, HashJoinNode):
            self._join_levels(node, node.build, node.probe, node.key_pairs, node.residual)
        elif isinstance(node, IndexNLJoinNode):
            inner_scan_level = self._base_column_levels(node.inner_table, node.inner_alias)
            columns = dict(self._columns[node.outer.node_id])
            columns.update(inner_scan_level)
            self._columns[node.node_id] = columns
            key_pairs = [
                (node.outer_column, f"{node.inner_alias}.{node.inner_column}")
            ]
            self._output[node.node_id] = self._join_output_level(
                node.outer, None, key_pairs, node.residual, node.inner_table
            )
        elif isinstance(node, BlockNLJoinNode):
            columns = dict(self._columns[node.outer.node_id])
            columns.update(self._columns[node.inner.node_id])
            self._columns[node.node_id] = columns
            # Non-equi (or cartesian) joins are always HIGH.
            self._output[node.node_id] = InaccuracyPotential.HIGH
        elif isinstance(node, HashAggregateNode):
            level = self.distinct_level(
                _through_collectors(node.child), node.group_by
            )
            self._columns[node.node_id] = {}
            self._output[node.node_id] = max(
                level, self._output[node.child.node_id]
            )
        else:
            self._passthrough(node, node.children[0])

    def _passthrough(self, node: PlanNode, child: PlanNode) -> None:
        self._columns[node.node_id] = dict(self._columns[child.node_id])
        self._output[node.node_id] = self._output[child.node_id]

    def _base_column_levels(
        self, table_name: str, alias: str
    ) -> dict[str, InaccuracyPotential]:
        stats = self.catalog.stats_for(table_name)
        levels: dict[str, InaccuracyPotential] = {}
        for column in self.catalog.table(table_name).schema:
            base = column.base_name
            cs = stats.column(base)
            kind = cs.histogram.kind if cs is not None and cs.has_histogram else None
            level = _histogram_level(kind)
            if stats.significant_update_activity:
                level = level.bumped()
            levels[f"{alias}.{base}"] = level
        return levels

    def _scan_levels(self, node: PlanNode, table_name: str, alias: str) -> None:
        self._columns[node.node_id] = self._base_column_levels(table_name, alias)
        stats = self.catalog.stats_for(table_name)
        level = InaccuracyPotential.LOW
        if stats.significant_update_activity:
            level = level.bumped()
        self._output[node.node_id] = level

    def _predicate_level(
        self, input_node: PlanNode, predicates: tuple[Predicate, ...]
    ) -> InaccuracyPotential:
        """Level contributed by a conjunction of selection predicates."""
        if not predicates:
            return InaccuracyPotential.LOW
        input_columns = self._columns[input_node.node_id]
        worst = InaccuracyPotential.LOW
        # Attributes referenced across the whole conjunction: two or more
        # distinct attributes of the same relation imply possible correlation.
        by_relation: dict[str, set[str]] = {}
        for pred in predicates:
            for column in pred.columns():
                by_relation.setdefault(qualifier_of(column), set()).add(column)
        correlated = any(len(cols) >= 2 for cols in by_relation.values())
        for pred in predicates:
            if pred.contains_function() or pred.is_parameter_based:
                return InaccuracyPotential.HIGH
            levels = [
                input_columns.get(c, InaccuracyPotential.HIGH) for c in pred.columns()
            ]
            level = max(levels) if levels else InaccuracyPotential.MEDIUM
            if correlated:
                level = level.bumped()
            worst = max(worst, level)
        return worst

    def _join_levels(
        self,
        node: HashJoinNode,
        left: PlanNode,
        right: PlanNode,
        key_pairs: tuple[tuple[str, str], ...],
        residual: tuple[Predicate, ...],
    ) -> None:
        columns = dict(self._columns[left.node_id])
        columns.update(self._columns[right.node_id])
        self._columns[node.node_id] = columns
        self._output[node.node_id] = self._join_output_level(
            left, right, list(key_pairs), residual, None
        )

    def _join_output_level(
        self,
        left: PlanNode,
        right: PlanNode | None,
        key_pairs: list[tuple[str, str]],
        residual: tuple[Predicate, ...],
        inner_table: str | None,
    ) -> InaccuracyPotential:
        level = self._output[left.node_id]
        if right is not None:
            level = max(level, self._output[right.node_id])
        if not key_pairs:
            return InaccuracyPotential.HIGH
        if any(not isinstance(p, Comparison) or not p.is_equi_join for p in residual):
            # Extra non-equi conjuncts at the join make the output HIGH.
            if residual:
                return InaccuracyPotential.HIGH
        if not self._joins_on_key(key_pairs, inner_table):
            level = level.bumped()
        return level

    def _joins_on_key(
        self, key_pairs: list[tuple[str, str]], inner_table: str | None
    ) -> bool:
        """Whether any join attribute is a declared key of its base table."""
        for left_col, right_col in key_pairs:
            for column in (left_col, right_col):
                alias = qualifier_of(column)
                base = column.rsplit(".", 1)[-1]
                table_name = self._table_for_alias(alias, inner_table)
                if table_name is not None and self.catalog.is_key_column(table_name, base):
                    return True
        return False

    def _table_for_alias(self, alias: str, inner_table: str | None) -> str | None:
        for node in self.plan.walk():
            if isinstance(node, (SeqScanNode, IndexScanNode)) and node.alias == alias:
                return node.table_name
            if isinstance(node, IndexNLJoinNode) and node.inner_alias == alias:
                return node.inner_table
        if inner_table is not None:
            return inner_table
        # The alias may name a table not yet in this (partial) plan.
        return alias if alias in self.catalog else None


def _through_collectors(node: PlanNode) -> PlanNode:
    """Skip collector wrappers to reach the meaningful input node."""
    while isinstance(node, StatsCollectorNode):
        node = node.child
    return node
