"""Parametric plans and the hybrid with Dynamic Re-Optimization.

The paper's section 4 sketches its own future work: "the query optimizer
can try to anticipate the most common cases that might arise at run-time
and produce a parameterized plan that covers these possibilities.  At query
execution time, statistics can be observed/collected to determine which
plan to choose for query execution.  If a situation arises at run-time that
is not covered by the common cases anticipated by the query optimizer,
dynamic re-optimization can be used."

This module implements that hybrid:

* :class:`ParametricOptimizer` produces one plan per *scenario* — an
  assumed selectivity for the query's host-variable predicates (in the
  spirit of Graefe & Ward / Graefe & Cole dynamic plans and Ioannidis
  et al. parametric optimization, the paper's [8], [7] and [10]).
  Structurally identical plans are deduplicated, so the common case of a
  selectivity-insensitive plan costs nothing extra at run time.
* :func:`choose_plan` picks the scenario at execution start, once the
  parameter values are known, by estimating the parameterised predicates
  *with* their values.
* The engine then executes the chosen plan with Dynamic Re-Optimization
  still armed — covering the situations (correlations, skew, stale
  catalogs) that no anticipated scenario captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import EngineConfig
from ..errors import OptimizerError
from ..plans.logical import LogicalQuery
from ..plans.physical import PlanNode
from ..stats.estimator import Estimator, profile_from_table_stats
from ..storage.catalog import Catalog
from ..optimizer.optimizer import Optimizer

#: Default selectivity scenarios: highly selective, the System-R magic
#: default, and non-selective — the "most common cases" of section 4.
DEFAULT_SCENARIOS: tuple[float, ...] = (0.02, 1.0 / 3.0, 0.9)


@dataclass
class Scenario:
    """One anticipated run-time case."""

    assumed_selectivity: float
    plan: PlanNode
    estimated_cost: float

    def describe(self) -> str:
        """Short label for profiles and reports."""
        return f"sel~{self.assumed_selectivity:.2f} (cost {self.estimated_cost:.1f})"


@dataclass
class ParametricPlan:
    """A set of scenario plans for one parameterised query."""

    query: LogicalQuery
    scenarios: list[Scenario] = field(default_factory=list)

    @property
    def plan_count(self) -> int:
        """Number of structurally distinct plans kept."""
        return len(self.scenarios)

    @property
    def is_degenerate(self) -> bool:
        """True when every scenario collapsed to one plan."""
        return self.plan_count <= 1


def plan_signature(plan: PlanNode) -> tuple:
    """A structural fingerprint used to deduplicate scenario plans."""
    parts = []
    for node in plan.walk():
        parts.append((node.label, node.detail(), len(node.children)))
    return tuple(parts)


def has_parameter_predicates(query: LogicalQuery) -> bool:
    """Whether any predicate compares against a host variable."""
    return any(p.is_parameter_based for p in query.predicates)


class ParametricOptimizer:
    """Optimizes one query under several assumed parameter selectivities."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig,
        scenarios: tuple[float, ...] = DEFAULT_SCENARIOS,
    ) -> None:
        self.catalog = catalog
        self.config = config
        self.scenario_selectivities = scenarios

    def optimize(self, query: LogicalQuery) -> ParametricPlan:
        """Produce the deduplicated scenario plans for ``query``."""
        if not has_parameter_predicates(query):
            raise OptimizerError(
                "parametric optimization requires host-variable predicates"
            )
        result = ParametricPlan(query=query)
        seen: dict[tuple, Scenario] = {}
        for selectivity in self.scenario_selectivities:
            estimator = Estimator(parameter_selectivity=selectivity)
            optimizer = Optimizer(self.catalog, self.config, estimator=estimator)
            plan = optimizer.optimize(query)
            signature = plan_signature(plan)
            if signature in seen:
                continue
            scenario = Scenario(
                assumed_selectivity=selectivity,
                plan=plan,
                estimated_cost=plan.est.total_cost,
            )
            seen[signature] = scenario
            result.scenarios.append(scenario)
        return result


def actual_parameter_selectivity(
    query: LogicalQuery, catalog: Catalog
) -> float:
    """Estimated joint selectivity of the parameterised predicates, using
    their (now known) values against base-table statistics."""
    estimator = Estimator(use_parameter_values=True)
    selectivities: list[float] = []
    for relation in query.relations:
        predicates = [
            p
            for p in query.selection_predicates(relation.alias)
            if p.is_parameter_based
        ]
        if not predicates:
            continue
        profile = profile_from_table_stats(
            catalog.stats_for(relation.table_name), relation.alias
        )
        for pred in predicates:
            selectivities.append(estimator.selectivity(pred, profile))
    if not selectivities:
        return 1.0
    joint = 1.0
    for sel in selectivities:
        joint *= sel
    # Geometric mean keeps the value comparable to per-predicate scenarios.
    return joint ** (1.0 / len(selectivities))


def choose_plan(
    parametric: ParametricPlan, catalog: Catalog
) -> tuple[Scenario, float]:
    """Pick the scenario closest to the observed parameter selectivity.

    This is the run-time decision step: the parameter values are known at
    execution start, so the anticipated case nearest to the estimated
    selectivity wins (log-distance, since selectivities span decades).
    """
    import math

    if not parametric.scenarios:
        raise OptimizerError("parametric plan has no scenarios")
    actual = actual_parameter_selectivity(parametric.query, catalog)
    floor = 1e-6

    def distance(scenario: Scenario) -> float:
        return abs(
            math.log(max(scenario.assumed_selectivity, floor))
            - math.log(max(actual, floor))
        )

    best = min(parametric.scenarios, key=distance)
    return best, actual
