"""Parametric plans and the hybrid with Dynamic Re-Optimization.

The paper's section 4 sketches its own future work: "the query optimizer
can try to anticipate the most common cases that might arise at run-time
and produce a parameterized plan that covers these possibilities.  At query
execution time, statistics can be observed/collected to determine which
plan to choose for query execution.  If a situation arises at run-time that
is not covered by the common cases anticipated by the query optimizer,
dynamic re-optimization can be used."

This module implements that hybrid:

* :class:`ParametricOptimizer` produces one plan per *scenario* — an
  assumed selectivity for the query's host-variable predicates (in the
  spirit of Graefe & Ward / Graefe & Cole dynamic plans and Ioannidis
  et al. parametric optimization, the paper's [8], [7] and [10]).
  Structurally identical plans are deduplicated, so the common case of a
  selectivity-insensitive plan costs nothing extra at run time.
* :func:`choose_plan` picks the scenario at execution start, once the
  parameter values are known, by estimating the parameterised predicates
  *with* their values.
* The engine then executes the chosen plan with Dynamic Re-Optimization
  still armed — covering the situations (correlations, skew, stale
  catalogs) that no anticipated scenario captures.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Mapping

from ..config import EngineConfig
from ..errors import OptimizerError
from ..plans.logical import (
    LogicalQuery,
    parameter_names,
    substitute_output,
    substitute_predicate,
    substitute_query,
)
from ..plans.physical import (
    BlockNLJoinNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    PlanNode,
    ProjectNode,
    fresh_node_id,
)
from ..stats.estimator import Estimator, profile_from_table_stats
from ..storage.catalog import Catalog
from ..optimizer.optimizer import Optimizer

#: Default selectivity scenarios: highly selective, the System-R magic
#: default, and non-selective — the "most common cases" of section 4.
DEFAULT_SCENARIOS: tuple[float, ...] = (0.02, 1.0 / 3.0, 0.9)


@dataclass
class Scenario:
    """One anticipated run-time case."""

    assumed_selectivity: float
    plan: PlanNode
    estimated_cost: float

    def describe(self) -> str:
        """Short label for profiles and reports."""
        return f"sel~{self.assumed_selectivity:.2f} (cost {self.estimated_cost:.1f})"


@dataclass
class ParametricPlan:
    """A set of scenario plans for one parameterised query."""

    query: LogicalQuery
    scenarios: list[Scenario] = field(default_factory=list)

    @property
    def plan_count(self) -> int:
        """Number of structurally distinct plans kept."""
        return len(self.scenarios)

    @property
    def is_degenerate(self) -> bool:
        """True when every scenario collapsed to one plan."""
        return self.plan_count <= 1


def plan_signature(plan: PlanNode) -> tuple:
    """A structural fingerprint used to deduplicate scenario plans."""
    parts = []
    for node in plan.walk():
        parts.append((node.label, node.detail(), len(node.children)))
    return tuple(parts)


def has_parameter_predicates(query: LogicalQuery) -> bool:
    """Whether any predicate compares against a host variable."""
    return any(p.is_parameter_based for p in query.predicates)


class ParametricOptimizer:
    """Optimizes one query under several assumed parameter selectivities."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig,
        scenarios: tuple[float, ...] = DEFAULT_SCENARIOS,
    ) -> None:
        self.catalog = catalog
        self.config = config
        self.scenario_selectivities = scenarios

    def optimize(self, query: LogicalQuery) -> ParametricPlan:
        """Produce the deduplicated scenario plans for ``query``."""
        if not has_parameter_predicates(query):
            raise OptimizerError(
                "parametric optimization requires host-variable predicates"
            )
        result = ParametricPlan(query=query)
        seen: dict[tuple, Scenario] = {}
        for selectivity in self.scenario_selectivities:
            estimator = Estimator(parameter_selectivity=selectivity)
            optimizer = Optimizer(self.catalog, self.config, estimator=estimator)
            plan = optimizer.optimize(query)
            signature = plan_signature(plan)
            if signature in seen:
                continue
            scenario = Scenario(
                assumed_selectivity=selectivity,
                plan=plan,
                estimated_cost=plan.est.total_cost,
            )
            seen[signature] = scenario
            result.scenarios.append(scenario)
        return result


class _MaskedParameter:
    """Sentinel rendering as ``:name`` so masked queries deparse to
    placeholder SQL — the value-independent text the plan cache keys
    parametric entries by."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f":{self.name}"


def mask_parameters(query: LogicalQuery) -> LogicalQuery:
    """Replace every parameter-born constant with a ``:name`` placeholder.

    The result deparses to SQL text that is identical for every parameter
    binding of the same statement; it is *not* executable.
    """
    names = parameter_names(query)
    if not names:
        return query
    return substitute_query(query, {n: _MaskedParameter(n) for n in names})


def plug_parameters(plan: PlanNode, values: Mapping[str, object]) -> PlanNode:
    """Clone ``plan`` with fresh host-variable values plugged in.

    A cached scenario plan embeds the parameter values it was first bound
    with: filter/residual predicates carry them as constants and index scans
    derive their key ranges from them.  Executing the plan for a new binding
    therefore clones the tree and rebuilds exactly those value-dependent
    pieces; nodes whose predicates change also drop their compiled-closure
    cache (the closures captured the old constants), while untouched nodes
    keep sharing the template's compiled closures.
    """
    new = copy.copy(plan)
    new.node_id = fresh_node_id()
    new.children = tuple(plug_parameters(c, values) for c in plan.children)
    new.est = plan.est.copy()
    changed = False

    def _sub_preds(preds):
        nonlocal changed
        fresh = tuple(substitute_predicate(p, values) for p in preds)
        if any(a is not b for a, b in zip(fresh, preds)):
            changed = True
        return fresh

    if isinstance(new, FilterNode):
        new.predicates = _sub_preds(new.predicates)
    elif isinstance(new, IndexScanNode):
        new.bound_predicates = _sub_preds(new.bound_predicates)
        if changed:
            from ..optimizer.access_paths import sargable_bound

            qualified = f"{new.alias}.{new.index_column}"
            bound = sargable_bound(new.bound_predicates, qualified)
            new.low, new.high = bound.low, bound.high
            new.low_inclusive = bound.low_inclusive
            new.high_inclusive = bound.high_inclusive
    elif isinstance(new, HashJoinNode):
        new.residual = _sub_preds(new.residual)
    elif isinstance(new, BlockNLJoinNode):
        new.predicates = _sub_preds(new.predicates)
    elif isinstance(new, IndexNLJoinNode):
        new.residual = _sub_preds(new.residual)
    elif isinstance(new, (ProjectNode, HashAggregateNode)):
        output = tuple(substitute_output(i, values) for i in new.output)
        if any(a is not b for a, b in zip(output, new.output)):
            changed = True
        new.output = output

    if changed:
        new._compiled = {}
    return new


def actual_parameter_selectivity(
    query: LogicalQuery, catalog: Catalog
) -> float:
    """Estimated joint selectivity of the parameterised predicates, using
    their (now known) values against base-table statistics."""
    estimator = Estimator(use_parameter_values=True)
    selectivities: list[float] = []
    for relation in query.relations:
        predicates = [
            p
            for p in query.selection_predicates(relation.alias)
            if p.is_parameter_based
        ]
        if not predicates:
            continue
        profile = profile_from_table_stats(
            catalog.stats_for(relation.table_name), relation.alias
        )
        for pred in predicates:
            selectivities.append(estimator.selectivity(pred, profile))
    if not selectivities:
        return 1.0
    joint = 1.0
    for sel in selectivities:
        joint *= sel
    # Geometric mean keeps the value comparable to per-predicate scenarios.
    return joint ** (1.0 / len(selectivities))


def choose_plan(
    parametric: ParametricPlan, catalog: Catalog, query: LogicalQuery | None = None
) -> tuple[Scenario, float]:
    """Pick the scenario closest to the observed parameter selectivity.

    This is the run-time decision step: the parameter values are known at
    execution start, so the anticipated case nearest to the estimated
    selectivity wins (log-distance, since selectivities span decades).

    ``query`` overrides the scenario set's stored query: a prepared
    statement re-executed with fresh parameter values passes its freshly
    bound query so the choice reflects the *current* values rather than the
    ones the scenario set was first built from.
    """
    import math

    if not parametric.scenarios:
        raise OptimizerError("parametric plan has no scenarios")
    actual = actual_parameter_selectivity(query or parametric.query, catalog)
    floor = 1e-6

    def distance(scenario: Scenario) -> float:
        return abs(
            math.log(max(scenario.assumed_selectivity, floor))
            - math.log(max(actual, floor))
        )

    best = min(parametric.scenarios, key=distance)
    return best, actual
