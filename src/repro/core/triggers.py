"""Re-optimization triggering heuristics (paper section 2.4).

Re-optimization is gated by two cheap tests *before* the optimizer is
re-invoked:

* **Equation 1** — re-optimizing is not worth the trouble unless the query's
  (improved) execution time is much larger than the estimated optimization
  time::

      T_opt,estimated / T_cur_plan,improved > theta1   ->  do NOT re-optimize

  with ``theta1 ~ 0.05``.

* **Equation 2** — there must be reason to believe the current plan is
  sub-optimal: the improved estimate must exceed the optimizer's original
  estimate by a relative margin::

      (T_cur_plan,improved - T_cur_plan,optimizer) / T_cur_plan,optimizer > theta2

  with ``theta2 ~ 0.2``.

If both gates pass, the optimizer is actually re-invoked (paying
``T_opt``), and the new plan is **accepted** only if its total estimated
time — including work already done, optimization and materialisation
overheads — beats the improved estimate for the current plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ReoptimizationParameters


@dataclass(frozen=True)
class TriggerDecision:
    """Outcome of the Equation 1/2 gates."""

    consider: bool
    reason: str
    t_cur_optimizer: float
    t_cur_improved: float
    t_opt_estimated: float


def should_consider_reoptimization(
    t_cur_optimizer: float,
    t_cur_improved: float,
    t_opt_estimated: float,
    params: ReoptimizationParameters,
) -> TriggerDecision:
    """Apply Equations 1 and 2; ``consider=True`` means invoke the optimizer."""
    def decision(consider: bool, reason: str) -> TriggerDecision:
        return TriggerDecision(
            consider=consider,
            reason=reason,
            t_cur_optimizer=t_cur_optimizer,
            t_cur_improved=t_cur_improved,
            t_opt_estimated=t_opt_estimated,
        )

    if t_cur_improved <= 0:
        return decision(False, "no remaining work to re-optimize")
    # Equation 1: optimization time must be negligible vs. query time.
    if t_opt_estimated / t_cur_improved > params.theta1:
        return decision(
            False,
            f"equation 1: T_opt/T_improved = "
            f"{t_opt_estimated / t_cur_improved:.3f} > theta1 = {params.theta1}",
        )
    # Equation 2: the plan must look sufficiently sub-optimal.
    if t_cur_optimizer <= 0:
        return decision(False, "optimizer estimate is zero")
    drift = (t_cur_improved - t_cur_optimizer) / t_cur_optimizer
    if drift <= params.theta2:
        return decision(
            False,
            f"equation 2: relative drift {drift:.3f} <= theta2 = {params.theta2}",
        )
    return decision(
        True,
        f"gates passed: drift {drift:.3f} > theta2, "
        f"T_opt/T_improved {t_opt_estimated / t_cur_improved:.3f} <= theta1",
    )


def accept_new_plan(t_new_total: float, t_cur_improved: float) -> bool:
    """Final acceptance test after the optimizer produced a new plan."""
    return t_new_total < t_cur_improved
