"""Re-optimization triggering heuristics (paper section 2.4).

Re-optimization is gated by two cheap tests *before* the optimizer is
re-invoked:

* **Equation 1** — re-optimizing is not worth the trouble unless the query's
  (improved) execution time is much larger than the estimated optimization
  time::

      T_opt,estimated / T_cur_plan,improved > theta1   ->  do NOT re-optimize

  with ``theta1 ~ 0.05``.

* **Equation 2** — there must be reason to believe the current plan is
  sub-optimal: the improved estimate must exceed the optimizer's original
  estimate by a relative margin::

      (T_cur_plan,improved - T_cur_plan,optimizer) / T_cur_plan,optimizer > theta2

  with ``theta2 ~ 0.2``.

If both gates pass, the optimizer is actually re-invoked (paying
``T_opt``), and the new plan is **accepted** only if its total estimated
time — including work already done, optimization and materialisation
overheads — beats the improved estimate for the current plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ReoptimizationParameters


@dataclass(frozen=True)
class TriggerDecision:
    """Outcome of the Equation 1/2 gates."""

    consider: bool
    reason: str
    t_cur_optimizer: float
    t_cur_improved: float
    t_opt_estimated: float
    #: Feedback-repository misestimation risk (0..1) of the fragment being
    #: checked; relaxes the Equation 2 drift threshold.
    feedback_risk: float = 0.0


def should_consider_reoptimization(
    t_cur_optimizer: float,
    t_cur_improved: float,
    t_opt_estimated: float,
    params: ReoptimizationParameters,
    feedback_risk: float = 0.0,
) -> TriggerDecision:
    """Apply Equations 1 and 2; ``consider=True`` means invoke the optimizer.

    ``feedback_risk`` (0..1) comes from the cross-query feedback repository:
    a fragment that has historically been misestimated gets a proportionally
    lower Equation 2 threshold — the engine is quicker to re-check plans it
    has been burned by before.  Zero (the default, and always the value when
    feedback is disabled) reproduces the paper's gates exactly.
    """
    risk = min(max(feedback_risk, 0.0), 1.0)

    def decision(consider: bool, reason: str) -> TriggerDecision:
        return TriggerDecision(
            consider=consider,
            reason=reason,
            t_cur_optimizer=t_cur_optimizer,
            t_cur_improved=t_cur_improved,
            t_opt_estimated=t_opt_estimated,
            feedback_risk=risk,
        )

    if t_cur_improved <= 0:
        return decision(False, "no remaining work to re-optimize")
    # Equation 1: optimization time must be negligible vs. query time.
    if t_opt_estimated / t_cur_improved > params.theta1:
        return decision(
            False,
            f"equation 1: T_opt/T_improved = "
            f"{t_opt_estimated / t_cur_improved:.3f} > theta1 = {params.theta1}",
        )
    # Equation 2: the plan must look sufficiently sub-optimal.  Historically
    # misestimated fragments shrink the drift threshold toward zero.
    if t_cur_optimizer <= 0:
        return decision(False, "optimizer estimate is zero")
    effective_theta2 = params.theta2 * (1.0 - risk)
    drift = (t_cur_improved - t_cur_optimizer) / t_cur_optimizer
    if drift <= effective_theta2:
        return decision(
            False,
            f"equation 2: relative drift {drift:.3f} <= theta2 = "
            f"{effective_theta2:.3f}"
            + (f" (feedback risk {risk:.2f})" if risk > 0 else ""),
        )
    return decision(
        True,
        f"gates passed: drift {drift:.3f} > theta2 = {effective_theta2:.3f}"
        + (f" (feedback risk {risk:.2f})" if risk > 0 else "")
        + f", T_opt/T_improved {t_opt_estimated / t_cur_improved:.3f} <= theta1",
    )


def accept_new_plan(t_new_total: float, t_cur_improved: float) -> bool:
    """Final acceptance test after the optimizer produced a new plan."""
    return t_new_total < t_cur_improved
