"""Improved estimates (paper section 2.2).

When a statistics collector completes, its observed statistics replace the
optimizer's estimates at that plan point and everything downstream is
re-derived.  Concretely:

* :func:`apply_improved_estimates` re-annotates the current plan with
  profile overrides at every completed collector (using the current memory
  grants), producing *improved* per-node estimates in place;
* :func:`remaining_cost` computes how much simulated time the current plan
  still needs under those improved estimates — completed operators cost
  nothing more, the in-flight blocking consumer only owes its probe phase;
* ``T_cur_plan,improved = elapsed + remaining`` feeds the re-optimization
  triggers.
"""

from __future__ import annotations

from typing import Mapping

from ..executor.collector import ObservedStatistics
from ..executor.runtime import RuntimeContext
from ..optimizer.cost_model import CostModel, pages_for
from ..optimizer.optimizer import Optimizer
from ..plans.physical import (
    HashJoinNode,
    PlanNode,
    StatsCollectorNode,
)
from ..stats.estimator import RelProfile


def observed_profiles(
    plan: PlanNode, observed: Mapping[int, ObservedStatistics]
) -> dict[int, RelProfile]:
    """Profile overrides for every collector with observed statistics."""
    overrides: dict[int, RelProfile] = {}
    for node in plan.walk():
        if isinstance(node, StatsCollectorNode) and node.node_id in observed:
            overrides[node.node_id] = observed[node.node_id].merge_into_profile(
                node.est.profile
            )
    return overrides


def apply_improved_estimates(
    plan: PlanNode,
    optimizer: Optimizer,
    ctx: RuntimeContext,
) -> dict[int, RelProfile]:
    """Re-annotate ``plan`` in place with observed statistics and live grants.

    Returns the profile overrides that were applied (keyed by collector
    node id) so callers can reuse them when optimizing a remainder query.
    """
    overrides = observed_profiles(plan, ctx.observed)
    annotator = optimizer.annotator(
        allocation=ctx.allocation, profile_overrides=overrides
    )
    annotator.annotate(plan)
    return overrides


def parent_of(plan: PlanNode, node_id: int) -> PlanNode | None:
    """Direct parent of a node within a plan."""
    for node in plan.walk():
        for child in node.children:
            if child.node_id == node_id:
                return node
    return None


def blocking_consumer(plan: PlanNode, collector_id: int) -> PlanNode | None:
    """The blocking operator that just finished consuming this collector.

    SCIA places collectors directly below blocking input edges, so this is
    simply the collector's parent (validated to be blocking).
    """
    parent = parent_of(plan, collector_id)
    if parent is not None and parent.is_blocking:
        return parent
    return None


def hash_join_probe_remaining(
    node: HashJoinNode, cost_model: CostModel, page_size: int, grant: int
) -> float:
    """Remaining (probe-phase) cost of a hash join whose build is complete."""
    build = node.build.est
    probe = node.probe.est
    cost = cost_model.hash_join_probe(
        build_pages=pages_for(build.rows, build.row_bytes, page_size),
        probe_rows=probe.rows,
        probe_pages=pages_for(probe.rows, probe.row_bytes, page_size),
        output_rows=node.est.rows,
        memory_pages=grant,
    )
    return cost.total_units(cost_model.params)


def remaining_cost(
    plan: PlanNode,
    ctx: RuntimeContext,
    cost_model: CostModel,
    in_flight: PlanNode | None = None,
) -> float:
    """Improved estimate of the cost still needed to finish the current plan.

    ``in_flight`` is the blocking consumer whose build input just completed;
    it owes only its probe phase.  Completed nodes owe nothing.  Everything
    else owes its (improved) per-operator cost.
    """
    page_size = ctx.catalog.page_size
    remaining = 0.0
    in_flight_id = in_flight.node_id if in_flight is not None else None
    for node in plan.walk():
        if node.node_id in ctx.completed:
            continue
        if node.node_id == in_flight_id and isinstance(node, HashJoinNode):
            grant = ctx.memory_for(node)
            build = node.build.est
            probe = node.probe.est
            cost = cost_model.hash_join_probe(
                build_pages=pages_for(build.rows, build.row_bytes, page_size),
                probe_rows=probe.rows,
                probe_pages=pages_for(probe.rows, probe.row_bytes, page_size),
                output_rows=node.est.rows,
                memory_pages=grant,
            )
            remaining += cost.total_units(cost_model.params)
            continue
        remaining += node.est.op_cost
    return remaining
