"""The simulated cost clock.

The paper evaluates Dynamic Re-Optimization by wall-clock time on a Paradise
cluster.  Our substitute is a deterministic :class:`CostClock`: every page
I/O and every unit of CPU work charges a fixed number of cost units (see
:class:`repro.config.CostParameters`).  Operators charge the clock as they
process real tuples, so "execution time" is reproducible bit-for-bit across
runs and machines while preserving the relative costs that drive the paper's
conclusions.

The clock also keeps a per-category breakdown, which the execution profile
exposes (sequential reads vs random reads vs writes vs CPU vs statistics
collection vs optimizer time) — useful for the overhead experiments (E5/E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CostParameters


@dataclass
class CostBreakdown:
    """Accumulated cost units per category."""

    seq_read: float = 0.0
    rand_read: float = 0.0
    write: float = 0.0
    cpu: float = 0.0
    stats_cpu: float = 0.0
    optimizer: float = 0.0

    @property
    def io(self) -> float:
        """Total I/O cost (reads plus writes)."""
        return self.seq_read + self.rand_read + self.write

    @property
    def total(self) -> float:
        """Total cost across all categories."""
        return self.io + self.cpu + self.stats_cpu + self.optimizer

    def snapshot(self) -> "CostBreakdown":
        """Return an independent copy of the current totals."""
        return CostBreakdown(
            seq_read=self.seq_read,
            rand_read=self.rand_read,
            write=self.write,
            cpu=self.cpu,
            stats_cpu=self.stats_cpu,
            optimizer=self.optimizer,
        )

    def minus(self, earlier: "CostBreakdown") -> "CostBreakdown":
        """Return the category-wise difference ``self - earlier``."""
        return CostBreakdown(
            seq_read=self.seq_read - earlier.seq_read,
            rand_read=self.rand_read - earlier.rand_read,
            write=self.write - earlier.write,
            cpu=self.cpu - earlier.cpu,
            stats_cpu=self.stats_cpu - earlier.stats_cpu,
            optimizer=self.optimizer - earlier.optimizer,
        )


@dataclass
class CostClock:
    """Deterministic execution clock charged by the storage and executor layers."""

    params: CostParameters = field(default_factory=CostParameters)
    breakdown: CostBreakdown = field(default_factory=CostBreakdown)

    @property
    def now(self) -> float:
        """Current simulated time in cost units."""
        return self.breakdown.total

    def charge_seq_read(self, pages: float) -> None:
        """Charge ``pages`` sequential page reads."""
        self.breakdown.seq_read += pages * self.params.seq_page_read

    def charge_rand_read(self, pages: float) -> None:
        """Charge ``pages`` random page reads."""
        self.breakdown.rand_read += pages * self.params.rand_page_read

    def charge_write(self, pages: float) -> None:
        """Charge ``pages`` page writes."""
        self.breakdown.write += pages * self.params.page_write

    def charge_cpu(self, units: float) -> None:
        """Charge raw CPU cost units."""
        self.breakdown.cpu += units

    def charge_tuples(self, count: float) -> None:
        """Charge per-tuple CPU for ``count`` tuples passing an operator."""
        self.breakdown.cpu += count * self.params.cpu_per_tuple

    def charge_stats_cpu(self, units: float) -> None:
        """Charge CPU spent inside statistics collectors."""
        self.breakdown.stats_cpu += units

    def charge_optimizer(self, units: float) -> None:
        """Charge time spent (re-)optimizing, in cost units."""
        self.breakdown.optimizer += units

    def elapsed_since(self, start: float) -> float:
        """Cost units elapsed since a previously captured ``now`` value."""
        return self.now - start
