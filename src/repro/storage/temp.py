"""Temporary-table management for plan modification.

When Dynamic Re-Optimization decides to change the plan mid-query, the output
of the currently executing operator is redirected to a temporary table on
disk (paper Figure 6); SQL for the remainder of the query is then generated
in terms of that table.  :class:`TempTableManager` creates uniquely named
temp tables, charges the page writes for materialisation to the cost clock,
registers the tables (with their *exact*, observed statistics) in the
catalog, and cleans them up when the query finishes.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..stats.table_stats import TableStats
from .buffer import BufferPool
from .catalog import Catalog
from .schema import Schema
from .table import Row, Table


class TempTableManager:
    """Creates, registers and reclaims per-query temporary tables."""

    def __init__(self, catalog: Catalog, buffer_pool: BufferPool) -> None:
        self.catalog = catalog
        self.buffer_pool = buffer_pool
        self._counter = itertools.count(1)
        self._active: list[str] = []

    @property
    def active_names(self) -> list[str]:
        """Names of temp tables that have not been dropped yet."""
        return list(self._active)

    def next_name(self) -> str:
        """Generate a fresh temp-table name."""
        return f"__temp_{next(self._counter)}"

    def materialize(
        self,
        schema: Schema,
        rows: Iterable[Row],
        stats: TableStats | None = None,
        name: str | None = None,
    ) -> Table:
        """Write rows to a new temp table, charging write I/O per page.

        ``stats``, when given, should describe the materialised result (the
        collectors' observed statistics); it is stored in the catalog so the
        re-invoked optimizer sees exact cardinalities for the temp table.
        """
        table_name = name or self.next_name()
        table = Table(table_name, schema, self.catalog.page_size, is_temporary=True)
        table.append_rows(rows)
        for page_no in range(table.page_count):
            self.buffer_pool.write(table.table_id, page_no)
        entry = self.catalog.register_table(table)
        if stats is not None:
            entry.stats = stats
        self._active.append(table_name)
        return table

    def create_empty(
        self,
        schema: Schema,
        stats: TableStats | None = None,
        name: str | None = None,
    ) -> Table:
        """Register an empty temp table to be filled by a cut operator.

        Used by plan modification: the remainder query must be optimized
        against the temp table's (estimated/observed) statistics *before*
        the materialisation happens, so the table is created empty with its
        statistics pre-seeded and rows are appended later.
        """
        table_name = name or self.next_name()
        table = Table(table_name, schema, self.catalog.page_size, is_temporary=True)
        entry = self.catalog.register_table(table)
        if stats is not None:
            entry.stats = stats
        self._active.append(table_name)
        return table

    def drop(self, name: str) -> None:
        """Drop one temp table and invalidate its buffered pages."""
        table = self.catalog.table(name)
        self.buffer_pool.invalidate_owner(table.table_id)
        self.catalog.drop_table(name)
        self._active = [n for n in self._active if n != name]

    def drop_all(self) -> None:
        """Drop every temp table created by this manager."""
        for name in list(self._active):
            self.drop(name)
