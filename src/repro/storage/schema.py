"""Schemas, columns and data types for the storage substrate.

Rows are plain Python tuples; a :class:`Schema` gives the tuples meaning by
mapping (optionally qualified) column names to positions and by describing
each column's type and on-disk width.  Widths drive the simulated page
accounting: ``rows_per_page = page_size // row_bytes``.

Dates are stored as integer day numbers (proleptic Gregorian ordinal), which
keeps comparisons cheap and lets histograms treat them as numeric values —
the same trick TPC-D-era systems used internally.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from ..errors import CatalogError

#: Fixed per-row header overhead, in bytes (slot pointer + null bitmap).
ROW_HEADER_BYTES = 8


class DataType(enum.Enum):
    """Column data types supported by the engine."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    @property
    def default_width(self) -> int:
        """Default on-disk width in bytes for a column of this type."""
        if self is DataType.INTEGER or self is DataType.DATE:
            return 4
        if self is DataType.FLOAT:
            return 8
        return 16  # STRING

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type order/compare numerically."""
        return self is not DataType.STRING


def date_to_int(text: str) -> int:
    """Convert an ISO ``YYYY-MM-DD`` date string to its ordinal day number."""
    return _dt.date.fromisoformat(text).toordinal()


def int_to_date(ordinal: int) -> str:
    """Convert an ordinal day number back to an ISO date string."""
    return _dt.date.fromordinal(ordinal).isoformat()


@dataclass(frozen=True)
class Column:
    """A single column: a name, a type and an on-disk width in bytes."""

    name: str
    dtype: DataType
    width: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            object.__setattr__(self, "width", self.dtype.default_width)

    @property
    def base_name(self) -> str:
        """The column name without any ``table.`` qualifier."""
        return self.name.rsplit(".", 1)[-1]

    def qualified(self, qualifier: str) -> "Column":
        """Return a copy of this column qualified as ``qualifier.base_name``."""
        return replace(self, name=f"{qualifier}.{self.base_name}")


class Schema:
    """An ordered collection of :class:`Column` objects.

    Column lookup accepts either the exact stored name or, when unambiguous,
    the bare (unqualified) name.  Schemas are immutable; operations such as
    :meth:`concat` and :meth:`qualify` return new schemas.
    """

    __slots__ = ("columns", "_by_name", "_by_base")

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, int] = {}
        self._by_base: dict[str, list[int]] = {}
        for i, col in enumerate(self.columns):
            if col.name in self._by_name:
                raise CatalogError(f"duplicate column name {col.name!r} in schema")
            self._by_name[col.name] = i
            self._by_base.setdefault(col.base_name, []).append(i)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self.columns)
        return f"Schema({cols})"

    @property
    def names(self) -> tuple[str, ...]:
        """The stored (possibly qualified) column names, in order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """Whether ``name`` resolves to exactly one column."""
        if name in self._by_name:
            return True
        return len(self._by_base.get(name, ())) == 1

    def index_of(self, name: str) -> int:
        """Resolve ``name`` (qualified or bare) to a tuple position.

        Raises :class:`CatalogError` for unknown or ambiguous names.
        """
        if name in self._by_name:
            return self._by_name[name]
        candidates = self._by_base.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise CatalogError(f"unknown column {name!r}; have {list(self.names)}")
        ambiguous = [self.columns[i].name for i in candidates]
        raise CatalogError(f"ambiguous column {name!r}: matches {ambiguous}")

    def column(self, name: str) -> Column:
        """Return the :class:`Column` that ``name`` resolves to."""
        return self.columns[self.index_of(name)]

    @property
    def row_bytes(self) -> int:
        """Estimated stored width of one row, including the row header."""
        return ROW_HEADER_BYTES + sum(c.width for c in self.columns)

    def rows_per_page(self, page_size: int) -> int:
        """How many rows fit on one simulated page (always at least 1)."""
        return max(1, page_size // self.row_bytes)

    def page_count(self, row_count: int, page_size: int) -> int:
        """Number of pages needed to store ``row_count`` rows."""
        if row_count <= 0:
            return 0
        per_page = self.rows_per_page(page_size)
        return -(-row_count // per_page)  # ceil division

    def qualify(self, qualifier: str) -> "Schema":
        """Return a schema with every column renamed to ``qualifier.base``."""
        return Schema(c.qualified(qualifier) for c in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Return the schema of the concatenation of rows from both schemas."""
        return Schema((*self.columns, *other.columns))

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema containing only the named columns, in given order."""
        return Schema(self.column(n) for n in names)

    def renamed(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping`` (old -> new)."""
        cols = []
        for col in self.columns:
            new_name = mapping.get(col.name, col.name)
            cols.append(replace(col, name=new_name))
        return Schema(cols)
