"""Columnar page groups: typed NumPy arrays per column, with zone maps.

A :class:`ColumnStore` is a columnar shadow of a heap :class:`~.table.Table`:
the table's rows, cut into *page groups* (the runs of whole pages the serial
batch scan accumulates into one batch — see :func:`page_groups`), with one
typed NumPy array per column per group and a per-group per-column
:class:`ZoneMap` (min / max / null count).  The heap rows remain the source
of truth — the store is a derived, incrementally-maintained acceleration
structure that the columnar executor (:mod:`repro.executor.columnar`) uses
for vectorized filter masks, key extraction and zone-map scan skipping.

Column encodings:

* ``"int64"`` / ``"float64"`` — numeric columns (INTEGER, DATE ordinals,
  FLOAT) as native NumPy arrays.  ``ndarray.tolist()`` round-trips exact
  Python scalars, so values materialized from arrays are byte-identical to
  the heap tuples' values.
* ``"dict"`` — low-cardinality string columns: one table-wide, append-only
  dictionary (value → code) plus an ``int32`` code array per group.  NULLs
  encode as code ``-1``.  When the dictionary exceeds the configured
  distinct-value budget the column *overflows* to plain encoding and every
  existing group's codes are decoded in place.
* ``"object"`` — the always-correct fallback: Python objects in an object
  array (mixed types, NULLs, integers beyond int64).

Maintenance: :meth:`Table.append_rows <repro.storage.table.Table.append_rows>`
re-syncs every attached store after each bulk append.  Appends only ever
extend the row list, so group boundaries of full groups are stable — sync
keeps the longest valid prefix of built groups and rebuilds just the tail
(at most the previously-partial final group plus the new rows).  Encoding
demotions (dictionary overflow, int64 overflow, a NULL arriving in a
numeric column) re-encode the affected column across all groups, which
keeps every group's representation uniform per column.

NumPy is an optional dependency of this module: when it is unavailable the
store reports :func:`numpy_available` as False and the columnar executor
falls back to the batch path; nothing else in the engine imports NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .schema import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import Table

try:  # NumPy is baked into the supported environments but stays optional.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]


def numpy_available() -> bool:
    """Whether the columnar representation can be built at all."""
    return np is not None


def page_groups(table: "Table", batch_size: int) -> list[tuple[int, int]]:
    """Page ranges matching the serial batch scan's yield boundaries.

    The serial scan accumulates whole pages until at least ``batch_size``
    rows are buffered, then yields; every consumer that wants to reproduce
    the serial batch structure — the morsel scheduler, the columnar store —
    derives its geometry from this one function so the boundaries can never
    drift apart.
    """
    per_page = table.rows_per_page
    total_rows = table.row_count
    groups: list[tuple[int, int]] = []
    start = 0
    buffered = 0
    for page_no in range(table.page_count):
        buffered += min(per_page, total_rows - page_no * per_page)
        if buffered >= batch_size:
            groups.append((start, page_no + 1))
            start = page_no + 1
            buffered = 0
    if buffered:
        groups.append((start, table.page_count))
    return groups


@dataclass(frozen=True)
class ZoneMap:
    """Min / max / null-count summary of one column over one page group.

    ``min_value`` / ``max_value`` are exact Python values (never NumPy
    scalars) over the group's non-NULL entries, or ``None`` when the group
    holds only NULLs.  A zone map is a *sound over-approximation*: a scan
    predicate that cannot be satisfied by any value in ``[min, max]`` with
    ``null_count == 0`` proves the group matches zero rows.
    """

    min_value: object | None
    max_value: object | None
    null_count: int
    row_count: int

    @property
    def all_null(self) -> bool:
        """Whether every row of the group is NULL in this column."""
        return self.null_count == self.row_count


class _Dictionary:
    """A table-wide, append-only value dictionary for one string column."""

    __slots__ = ("codes", "values", "_values_array")

    def __init__(self) -> None:
        self.codes: dict[object, int] = {}
        self.values: list[object] = []
        self._values_array = None

    def encode(self, value: object) -> int:
        code = self.codes.get(value)
        if code is None:
            code = self.codes[value] = len(self.values)
            self.values.append(value)
            self._values_array = None
        return code

    def values_array(self):
        """The dictionary's values as an object array (cached per size)."""
        if self._values_array is None:
            arr = np.empty(len(self.values), dtype=object)
            arr[:] = self.values
            self._values_array = arr
        return self._values_array


class ColumnGroup:
    """One page group: per-column arrays plus per-column zone maps."""

    __slots__ = (
        "index",
        "first_page",
        "last_page",
        "start_row",
        "end_row",
        "arrays",
        "zones",
        "_decoded",
    )

    def __init__(self, index, first_page, last_page, start_row, end_row):
        self.index = index
        self.first_page = first_page
        self.last_page = last_page
        self.start_row = start_row
        self.end_row = end_row
        self.arrays: list = []
        self.zones: list[ZoneMap] = []
        #: Per-column cache of decoded (value-space) arrays for dictionary
        #: columns, filled lazily by :meth:`ColumnStore.values`.
        self._decoded: dict[int, object] = {}

    @property
    def row_count(self) -> int:
        return self.end_row - self.start_row

    @property
    def page_count(self) -> int:
        return self.last_page - self.first_page


class ColumnStore:
    """Columnar shadow of one table at one page-group geometry.

    Created (and cached) through :meth:`Table.column_store`; one store per
    ``(batch_size, dictionary_max)`` pair, because the group geometry is
    the batch geometry.  :meth:`sync` is idempotent and incremental.
    """

    def __init__(self, table: "Table", batch_size: int, dictionary_max: int = 256):
        if np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError("ColumnStore requires numpy")
        self.table = table
        self.batch_size = batch_size
        self.dictionary_max = dictionary_max
        self.groups: list[ColumnGroup] = []
        width = len(table.schema)
        #: Per-column encoding kind: "int64" | "float64" | "dict" | "object".
        self.encodings: list[str] = [
            self._initial_encoding(col.dtype) for col in table.schema
        ]
        self.dictionaries: list[_Dictionary | None] = [
            _Dictionary() if kind == "dict" else None for kind in self.encodings
        ]
        self._width = width
        #: Bumped whenever sync rebuilds anything (observability for tests).
        self.version = 0

    @staticmethod
    def _initial_encoding(dtype: DataType) -> str:
        if dtype in (DataType.INTEGER, DataType.DATE):
            return "int64"
        if dtype is DataType.FLOAT:
            return "float64"
        return "dict"  # STRING starts dictionary-encoded, may overflow

    # -- maintenance ----------------------------------------------------

    def sync(self) -> None:
        """Bring the store up to date with the table's rows.

        Keeps the longest prefix of built groups whose page bounds *and*
        row extent still match the current geometry (appends can only grow
        the final, previously-partial group), rebuilds the rest.
        """
        table = self.table
        bounds = page_groups(table, self.batch_size)
        per_page = table.rows_per_page
        nrows = table.row_count
        keep = 0
        for group, (first_page, last_page) in zip(self.groups, bounds):
            end_row = min(last_page * per_page, nrows)
            if (
                group.first_page == first_page
                and group.last_page == last_page
                and group.end_row == end_row
            ):
                keep += 1
            else:
                break
        if keep == len(self.groups) == len(bounds):
            return  # already current
        del self.groups[keep:]
        for index in range(keep, len(bounds)):
            first_page, last_page = bounds[index]
            start_row = first_page * per_page
            end_row = min(last_page * per_page, nrows)
            group = ColumnGroup(index, first_page, last_page, start_row, end_row)
            chunk = table.rows[start_row:end_row]
            for position in range(self._width):
                array, zone = self._encode_column(position, chunk)
                group.arrays.append(array)
                group.zones.append(zone)
            self.groups.append(group)
        self.version += 1

    def reset(self) -> None:
        """Drop everything (table truncated); next sync rebuilds from scratch."""
        self.groups.clear()
        self.encodings = [self._initial_encoding(col.dtype) for col in self.table.schema]
        self.dictionaries = [
            _Dictionary() if kind == "dict" else None for kind in self.encodings
        ]
        self.version += 1

    # -- encoding -------------------------------------------------------

    def _encode_column(self, position: int, chunk: list) -> tuple:
        values = [row[position] for row in chunk]
        kind = self.encodings[position]
        while True:
            try:
                return self._encode_as(kind, position, values)
            except _EncodingOverflow:
                kind = self._demote(position)

    def _encode_as(self, kind: str, position: int, values: list) -> tuple:
        if kind == "dict":
            return self._encode_dict(position, values)
        zone = _zone_of(values)
        if kind == "object":
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
            return arr, zone
        if zone.null_count:
            raise _EncodingOverflow  # NULL in a numeric column: go object
        # Exact-type gate: NumPy would silently *truncate* a stray float in
        # an int64 array (and coerce ints to floats in a float64 one), which
        # would break the value-level parity contract.  Mistyped values send
        # the whole column to the object encoding instead.
        if kind == "int64":
            # bool is an int subclass but tolist() would turn True into 1,
            # so booleans also force the object encoding.
            if not all(
                isinstance(v, int) and not isinstance(v, bool) for v in values
            ):
                raise _EncodingOverflow
            dtype = np.int64
        else:
            if not all(isinstance(v, float) for v in values):
                raise _EncodingOverflow
            dtype = np.float64
        try:
            arr = np.array(values, dtype=dtype)
        except (OverflowError, TypeError, ValueError):
            raise _EncodingOverflow from None
        # int64 conversion raises on overflow and float64 stores Python
        # floats exactly (same IEEE 754 representation), so tolist() always
        # returns the original values.
        return arr, zone

    def _encode_dict(self, position: int, values: list) -> tuple:
        dictionary = self.dictionaries[position]
        encode = dictionary.encode
        codes = np.empty(len(values), dtype=np.int32)
        null_count = 0
        for i, value in enumerate(values):
            if value is None:
                codes[i] = -1
                null_count += 1
            else:
                codes[i] = encode(value)
        if len(dictionary.values) > self.dictionary_max:
            raise _EncodingOverflow
        present = np.unique(codes)
        non_null = [dictionary.values[c] for c in present.tolist() if c >= 0]
        zone = ZoneMap(
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
            null_count=null_count,
            row_count=len(values),
        )
        return codes, zone

    def _demote(self, position: int) -> str:
        """Demote a column one step (dict → object, numeric → object) and
        re-encode it in every already-built group."""
        old = self.encodings[position]
        dictionary = self.dictionaries[position]
        self.encodings[position] = "object"
        self.dictionaries[position] = None
        for group in self.groups:
            if old == "dict":
                codes = group.arrays[position]
                values = dictionary.values
                decoded = np.empty(len(codes), dtype=object)
                decoded[:] = [
                    values[c] if c >= 0 else None for c in codes.tolist()
                ]
                group.arrays[position] = decoded
            else:
                arr = np.empty(group.row_count, dtype=object)
                arr[:] = [
                    row[position]
                    for row in self.table.rows[group.start_row : group.end_row]
                ]
                group.arrays[position] = arr
            group._decoded.pop(position, None)
        return "object"

    # -- access ---------------------------------------------------------

    def values(self, group: ColumnGroup, position: int):
        """The group's column in *value space* (decoded for dict columns).

        Decoded arrays are cached on the group: repeated queries over the
        same store pay the dictionary gather once per group per column.
        """
        if self.encodings[position] != "dict":
            return group.arrays[position]
        cached = group._decoded.get(position)
        if cached is not None:
            return cached
        codes = group.arrays[position]
        zone = group.zones[position]
        dictionary = self.dictionaries[position]
        if zone.null_count:
            decoded = np.empty(len(codes), dtype=object)
            decoded[:] = [
                dictionary.values[c] if c >= 0 else None for c in codes.tolist()
            ]
        else:
            decoded = dictionary.values_array()[codes]
        group._decoded[position] = decoded
        return decoded


class _EncodingOverflow(Exception):
    """Internal signal: the column's current encoding cannot hold a value."""


def _zone_of(values: list) -> ZoneMap:
    """Exact min/max/null-count of one column chunk, as Python values."""
    null_count = 0
    mn = mx = None
    for value in values:
        if value is None:
            null_count += 1
        elif mn is None:
            mn = mx = value
        elif value < mn:
            mn = value
        elif value > mx:
            mx = value
    return ZoneMap(
        min_value=mn, max_value=mx, null_count=null_count, row_count=len(values)
    )
