"""Heap tables.

A :class:`Table` is a named, schema-ed, paged container of row tuples.  It is
deliberately *passive*: it knows its page geometry (how many simulated pages
it occupies, which page a row lives on) but does not charge the cost clock —
the executor's scan iterators do that, routing page requests through the
buffer pool.  This keeps the cost accounting in one layer.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from ..concurrency import fork_safe_lock
from ..errors import StorageError
from .schema import Schema

Row = tuple

_table_ids = itertools.count(1)


class Table:
    """A heap table: an append-only list of rows plus page geometry."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        page_size: int,
        rows: Iterable[Row] | None = None,
        is_temporary: bool = False,
    ) -> None:
        self.table_id = next(_table_ids)
        self.name = name
        self.schema = schema
        self.page_size = page_size
        self.is_temporary = is_temporary
        self.rows: list[Row] = []
        #: Columnar shadows keyed by (batch_size, dictionary_max); built on
        #: demand by :meth:`column_store` and kept in sync by
        #: :meth:`append_rows` / :meth:`truncate`.
        self._column_stores: dict = {}
        # Concurrent server sessions scanning the same table may both reach
        # the lazy column-store build/sync; serialize it so one session
        # never observes a half-built shadow.
        self._store_lock = fork_safe_lock(self, "_store_lock")
        if rows is not None:
            self.append_rows(rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.row_count}, pages={self.page_count})"

    @property
    def row_count(self) -> int:
        """Number of rows stored."""
        return len(self.rows)

    @property
    def rows_per_page(self) -> int:
        """Rows per simulated page for this table's schema."""
        return self.schema.rows_per_page(self.page_size)

    @property
    def page_count(self) -> int:
        """Number of simulated pages the table occupies."""
        return self.schema.page_count(self.row_count, self.page_size)

    @property
    def total_bytes(self) -> int:
        """Estimated stored size in bytes."""
        return self.row_count * self.schema.row_bytes

    def page_of_row(self, row_index: int) -> int:
        """Page number holding the row at ``row_index``."""
        return row_index // self.rows_per_page

    def append_rows(self, rows: Iterable[Row]) -> int:
        """Bulk-append rows after validating their arity; returns count added."""
        width = len(self.schema)
        added = 0
        for row in rows:
            if len(row) != width:
                raise StorageError(
                    f"row arity {len(row)} does not match schema width {width} "
                    f"for table {self.name!r}"
                )
            self.rows.append(tuple(row))
            added += 1
        if added:
            # Zone maps / column arrays are maintained on append: each
            # attached store extends its tail groups incrementally.
            with self._store_lock:
                for store in self._column_stores.values():
                    store.sync()
        return added

    def column_store(self, batch_size: int, dictionary_max: int = 256):
        """The (synced) columnar shadow of this table at one batch geometry.

        Stores are cached per ``(batch_size, dictionary_max)`` — the page
        groups *are* the serial batch-scan batches, so the geometry is part
        of the identity.  Requires NumPy; callers gate on
        :func:`repro.storage.columnar.numpy_available`.
        """
        key = (batch_size, dictionary_max)
        with self._store_lock:
            store = self._column_stores.get(key)
            if store is None:
                from .columnar import ColumnStore

                store = self._column_stores[key] = ColumnStore(
                    self, batch_size, dictionary_max
                )
            store.sync()
        return store

    def iter_pages(self) -> Iterator[Sequence[Row]]:
        """Yield rows grouped by page, in storage order."""
        per_page = self.rows_per_page
        for start in range(0, self.row_count, per_page):
            yield self.rows[start : start + per_page]

    def truncate(self) -> None:
        """Remove all rows (used by temp-table recycling)."""
        self.rows.clear()
        with self._store_lock:
            for store in self._column_stores.values():
                store.reset()
