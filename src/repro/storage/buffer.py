"""A simulated LRU buffer pool.

Scans and index lookups route their page requests through the buffer pool;
only misses charge the :class:`~repro.storage.disk.CostClock`.  The pool is
identified-page based (``(owner_id, page_no)``), write-through, and keeps
simple hit/miss counters so experiments can report buffer behaviour.

The paper kept the Paradise buffer pool deliberately small (32 MB/node) so
that memory-management effects were visible; the default pool here is small
relative to workload sizes for the same reason.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .disk import CostClock

PageKey = tuple[int, int]


@dataclass
class BufferStats:
    """Hit/miss counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests served."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the pool (0.0 when unused)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class BufferPool:
    """LRU buffer pool over simulated pages.

    The pool stores page *identities* only — row data lives in the owning
    :class:`~repro.storage.table.Table` — because the simulation only needs to
    know whether an access is a hit (free) or a miss (charged to the clock).
    """

    def __init__(self, capacity_pages: int, clock: CostClock) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"buffer pool capacity must be positive, got {capacity_pages}")
        self.capacity = capacity_pages
        self.clock = clock
        self.stats = BufferStats()
        self._pages: OrderedDict[PageKey, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def access(self, owner_id: int, page_no: int, sequential: bool = True) -> bool:
        """Request a page; charge the clock on a miss.

        Returns ``True`` on a buffer hit.  ``sequential`` selects the read
        cost charged on a miss (sequential vs random page read).
        """
        key = (owner_id, page_no)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if sequential:
            self.clock.charge_seq_read(1)
        else:
            self.clock.charge_rand_read(1)
        self._admit(key)
        return False

    def write(self, owner_id: int, page_no: int) -> None:
        """Write a page through to disk (always charged) and cache it."""
        key = (owner_id, page_no)
        self.clock.charge_write(1)
        if key in self._pages:
            self._pages.move_to_end(key)
        else:
            self._admit(key)

    def invalidate_owner(self, owner_id: int) -> None:
        """Drop every cached page belonging to ``owner_id`` (e.g. temp drop)."""
        stale = [key for key in self._pages if key[0] == owner_id]
        for key in stale:
            del self._pages[key]

    def clear(self) -> None:
        """Empty the pool (counters are preserved)."""
        self._pages.clear()

    def _admit(self, key: PageKey) -> None:
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        self._pages[key] = None
