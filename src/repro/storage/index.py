"""Sorted indexes.

A :class:`Index` is a B+-tree stand-in: a sorted array of ``(key, row_index)``
pairs over one column of a table, with the page geometry of a real tree
(fan-out derived from key width, computed height, leaf-page counts).  Lookups
return matching row indices; the executor's index-scan and indexed
nested-loops iterators use the geometry to charge realistic costs:

* traversal: ``height`` random page reads,
* leaf scan: ``ceil(matches / entries_per_leaf)`` sequential reads,
* row fetch: sequential for a clustered index, one random read per row
  (capped at the table's page count for repeated keys) for an unclustered one.

These are the classical System-R style index cost terms; the optimizer's cost
model mirrors them exactly, so estimated and actual index costs differ only
through cardinality errors — which is precisely the error source the paper's
algorithm targets.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from ..errors import StorageError
from .table import Table

#: Bytes per index entry beyond the key itself (row pointer).
ENTRY_POINTER_BYTES = 8


class Index:
    """A sorted single-column index over a :class:`Table`."""

    def __init__(self, name: str, table: Table, column: str, clustered: bool = False) -> None:
        self.name = name
        self.table = table
        self.column = table.schema.column(column).name
        self.clustered = clustered
        self._position = table.schema.index_of(column)
        pairs = sorted(
            (row[self._position], i) for i, row in enumerate(table.rows)
        )
        self.keys: list = [k for k, _ in pairs]
        self.row_indices: list[int] = [i for _, i in pairs]
        key_width = table.schema.columns[self._position].width
        self.entries_per_leaf = max(2, table.page_size // (key_width + ENTRY_POINTER_BYTES))

    def __repr__(self) -> str:
        kind = "clustered" if self.clustered else "unclustered"
        return f"Index({self.name!r} on {self.table.name}.{self.column}, {kind})"

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def leaf_pages(self) -> int:
        """Number of leaf pages in the simulated tree."""
        if not self.keys:
            return 0
        return math.ceil(len(self.keys) / self.entries_per_leaf)

    @property
    def height(self) -> int:
        """Height of the simulated tree (inner levels above the leaves)."""
        leaves = self.leaf_pages
        if leaves <= 1:
            return 1
        return 1 + max(1, math.ceil(math.log(leaves, self.entries_per_leaf)))

    def lookup_eq(self, key) -> list[int]:
        """Row indices whose key equals ``key`` (may be empty)."""
        lo = bisect.bisect_left(self.keys, key)
        hi = bisect.bisect_right(self.keys, key)
        return self.row_indices[lo:hi]

    def lookup_range(self, low=None, high=None, low_inclusive: bool = True,
                     high_inclusive: bool = True) -> list[int]:
        """Row indices with keys in the given (possibly open-ended) range."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self.keys, low)
        else:
            lo = bisect.bisect_right(self.keys, low)
        if high is None:
            hi = len(self.keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self.keys, high)
        else:
            hi = bisect.bisect_left(self.keys, high)
        if hi < lo:
            return []
        return self.row_indices[lo:hi]

    def leaf_pages_for(self, match_count: int) -> int:
        """Leaf pages touched when reading ``match_count`` consecutive entries."""
        if match_count <= 0:
            return 0
        return math.ceil(match_count / self.entries_per_leaf)

    def fetch_page_reads(self, match_count: int) -> tuple[float, float]:
        """Estimated ``(sequential, random)`` page reads to fetch matched rows.

        Clustered indexes read the matching heap pages sequentially; an
        unclustered index pays one random read per row, capped at the table's
        page count (further fetches would be buffer hits in the real system).
        """
        if match_count <= 0:
            return (0.0, 0.0)
        if self.clustered:
            return (self.table.schema.page_count(match_count, self.table.page_size), 0.0)
        return (0.0, float(min(match_count, self.table.page_count)))

    def rebuild(self) -> None:
        """Re-sort the index after its table was bulk-loaded again."""
        pairs = sorted(
            (row[self._position], i) for i, row in enumerate(self.table.rows)
        )
        self.keys = [k for k, _ in pairs]
        self.row_indices = [i for _, i in pairs]


def build_index(name: str, table: Table, column: str, clustered: bool = False) -> Index:
    """Construct an index, validating that the column exists on the table."""
    if not table.schema.has_column(column):
        raise StorageError(f"cannot index unknown column {column!r} on {table.name!r}")
    return Index(name, table, column, clustered=clustered)
