"""Storage substrate: schemas, tables, buffer pool, indexes, catalog, temp space."""

from .buffer import BufferPool, BufferStats
from .catalog import Catalog, TableEntry
from .columnar import ColumnStore, ZoneMap, numpy_available, page_groups
from .disk import CostBreakdown, CostClock
from .index import Index, build_index
from .schema import Column, DataType, Schema, date_to_int, int_to_date
from .table import Row, Table
from .temp import TempTableManager

__all__ = [
    "BufferPool",
    "BufferStats",
    "Catalog",
    "Column",
    "ColumnStore",
    "CostBreakdown",
    "CostClock",
    "DataType",
    "Index",
    "Row",
    "Schema",
    "Table",
    "TableEntry",
    "TempTableManager",
    "ZoneMap",
    "build_index",
    "date_to_int",
    "int_to_date",
    "numpy_available",
    "page_groups",
]
