"""The system catalog.

The catalog maps names to tables, tracks indexes and key columns, and stores
per-table :class:`~repro.stats.table_stats.TableStats`.  It is the boundary
between "what the optimizer believes" and "what is actually stored":
experiments inject stale or coarse statistics via :meth:`Catalog.set_stats`
without touching the underlying data, reproducing the estimation-error
sources the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..concurrency import fork_safe_lock
from ..errors import CatalogError
from ..stats.histogram import HistogramKind
from ..stats.table_stats import TableStats, compute_table_stats, schema_only_stats
from .index import Index, build_index
from .schema import Schema
from .table import Table


@dataclass
class TableEntry:
    """Catalog entry for one table."""

    table: Table
    stats: TableStats | None = None
    key_columns: tuple[str, ...] = ()
    indexes: dict[str, Index] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The table's name."""
        return self.table.name


class Catalog:
    """Name -> table/index/statistics registry.

    The catalog also carries a monotonically increasing **statistics epoch**:
    any event that can change what the optimizer would decide — fresh or
    injected statistics, data loads, index DDL, table creation/removal, or
    mid-query re-optimization folding back improved observed statistics —
    bumps the epoch.  The plan cache (:mod:`repro.engine.plan_cache`) stamps
    every entry with the epoch it was optimized under and refuses to serve
    entries from older epochs, so a stale plan is never returned after the
    engine has learned better estimates.  Per-query *temporary* tables are
    exempt: they come and go inside a single execution and say nothing new
    about the persistent database.
    """

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._entries: dict[str, TableEntry] = {}
        #: Monotonically increasing statistics epoch (see class docstring).
        self.stats_epoch = 0
        # Serializes mutations (DDL, stats injection, epoch bumps) across
        # concurrent server sessions.  Reads stay lock-free: single dict
        # lookups are atomic under the GIL and entries are never mutated in
        # place by a writer holding the lock mid-read.
        self._lock = fork_safe_lock(self, "_lock")

    def bump_stats_epoch(self) -> int:
        """Advance the statistics epoch; returns the new value."""
        with self._lock:
            self.stats_epoch += 1
            return self.stats_epoch

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[TableEntry]:
        return iter(self._entries.values())

    @property
    def table_names(self) -> list[str]:
        """All registered table names."""
        return list(self._entries)

    # -- tables ----------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        key_columns: Sequence[str] = (),
        is_temporary: bool = False,
    ) -> Table:
        """Create and register an empty table."""
        table = Table(name, schema, self.page_size, is_temporary=is_temporary)
        self.register_table(table, key_columns=key_columns)
        return table

    def register_table(self, table: Table, key_columns: Sequence[str] = ()) -> TableEntry:
        """Register an existing table object."""
        key = table.name.lower()
        for col in key_columns:
            if not table.schema.has_column(col):
                raise CatalogError(f"key column {col!r} not in schema of {table.name!r}")
        with self._lock:
            if key in self._entries:
                raise CatalogError(f"table {table.name!r} already exists")
            entry = TableEntry(table=table, key_columns=tuple(key_columns))
            self._entries[key] = entry
            if not table.is_temporary:
                self.bump_stats_epoch()
        return entry

    def drop_table(self, name: str) -> None:
        """Remove a table (and its indexes/statistics) from the catalog."""
        key = name.lower()
        with self._lock:
            if key not in self._entries:
                raise CatalogError(f"cannot drop unknown table {name!r}")
            entry = self._entries.pop(key)
            if not entry.table.is_temporary:
                self.bump_stats_epoch()

    def entry(self, name: str) -> TableEntry:
        """Catalog entry for ``name`` (raises for unknown tables)."""
        key = name.lower()
        if key not in self._entries:
            raise CatalogError(f"unknown table {name!r}; have {self.table_names}")
        return self._entries[key]

    def table(self, name: str) -> Table:
        """The table object registered under ``name``."""
        return self.entry(name).table

    # -- statistics -------------------------------------------------------

    def analyze(
        self,
        name: str,
        histogram_kind: HistogramKind | None = HistogramKind.MAXDIFF,
        num_buckets: int = 32,
        histogram_columns: Sequence[str] | None = None,
    ) -> TableStats:
        """Scan a table and store fresh statistics (ANALYZE)."""
        entry = self.entry(name)
        stats = compute_table_stats(
            entry.table,
            histogram_kind=histogram_kind,
            num_buckets=num_buckets,
            key_columns=entry.key_columns,
            histogram_columns=histogram_columns,
        )
        with self._lock:
            entry.stats = stats
            if not entry.table.is_temporary:
                self.bump_stats_epoch()
        return stats

    def set_stats(self, name: str, stats: TableStats) -> None:
        """Inject (possibly deliberately wrong) statistics for a table."""
        entry = self.entry(name)
        with self._lock:
            entry.stats = stats
            if not entry.table.is_temporary:
                self.bump_stats_epoch()

    def stats_for(self, name: str) -> TableStats:
        """Statistics for a table, falling back to schema-only defaults."""
        entry = self.entry(name)
        if entry.stats is not None:
            return entry.stats
        return schema_only_stats(entry.table)

    # -- indexes ----------------------------------------------------------

    def create_index(
        self, index_name: str, table_name: str, column: str, clustered: bool = False
    ) -> Index:
        """Build and register a sorted index on one column."""
        entry = self.entry(table_name)
        base = entry.table.schema.column(column).base_name
        if base in entry.indexes:
            raise CatalogError(f"index already exists on {table_name}.{base}")
        index = build_index(index_name, entry.table, column, clustered=clustered)
        with self._lock:
            entry.indexes[base] = index
            if not entry.table.is_temporary:
                self.bump_stats_epoch()
        return index

    def index_on(self, table_name: str, column: str) -> Index | None:
        """The index on ``table.column`` if one exists."""
        entry = self.entry(table_name)
        if not entry.table.schema.has_column(column):
            return None
        base = entry.table.schema.column(column).base_name
        return entry.indexes.get(base)

    def indexes_for(self, table_name: str) -> Iterable[Index]:
        """All indexes registered on a table."""
        return self.entry(table_name).indexes.values()

    def is_key_column(self, table_name: str, column: str) -> bool:
        """Whether ``column`` is declared a key of ``table_name``."""
        entry = self.entry(table_name)
        if not entry.table.schema.has_column(column):
            return False
        base = entry.table.schema.column(column).base_name
        return base in entry.key_columns
